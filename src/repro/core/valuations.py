"""Active domains and valid-valuation enumeration (Section 3.2).

The paper's small-model property says it suffices to consider extensions
built from values in ``Adom``: all constants appearing in ``D``, ``Dm``,
``Q``, ``V``, plus a set ``New`` of distinct values not appearing anywhere,
one per tableau variable.  For a tableau variable ``y``:

* if ``y`` occurs in a finite-domain column, its candidates ``adom(y)`` are
  that finite domain's values;
* otherwise its candidates are the shared constants plus fresh value(s).

**Dedicated-fresh optimization.**  Enumerating every variable over the whole
``New`` pool is wasteful: if an incompleteness witness maps two variables to
the *same* fresh value, splitting them onto distinct fresh values yields
another witness.  (Sketch: collapsing distinct fresh values is a
homomorphism fixing ``D``, ``Dm``, and all constants; monotone CC queries
are preserved under homomorphisms, and a CC answer containing a fresh value
can never be inside ``p(Dm)``, so constraint satisfaction transfers, while a
summary containing a fresh value is never in ``Q(D)``.)  The RCDP
enumeration therefore gives each variable only *its own* fresh value
(``fresh="own"``); the RCQP valuation-set search, where fresh values of the
query tableau must be reachable by constraint-tableau valuations, uses the
full pool (``fresh="all"``).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator

from repro.errors import ConstraintError
from repro.queries.tableau import Tableau
from repro.queries.terms import Var
from repro.relational.domain import FreshValue, FreshValueSupply
from repro.relational.instance import Instance

__all__ = ["ActiveDomain", "iter_valid_valuations",
           "iter_sharded_valuations"]

Valuation = dict[Var, Any]


class ActiveDomain:
    """The active domain ``Adom`` of an RCDP/RCQP instance.

    Built once per decision from the database, master data, query, and
    constraints; hands out per-variable candidate lists.
    """

    __slots__ = ("constants", "_fresh_by_name", "_supply")

    def __init__(self, constants: Iterable[Any]) -> None:
        self.constants: frozenset[Any] = frozenset(constants)
        self._fresh_by_name: dict[str, FreshValue] = {}
        self._supply = FreshValueSupply(prefix="adom")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, instances: Iterable[Instance],
              queries: Iterable[Any],
              tableaux: Iterable[Tableau] = ()) -> "ActiveDomain":
        """Collect constants from *instances* and *queries*, and register a
        dedicated fresh value for every variable of *tableaux*."""
        constants: set[Any] = set()
        for instance in instances:
            constants |= instance.active_domain()
        for query in queries:
            constants |= set(query.constants())
        adom = cls(constants)
        for tableau in tableaux:
            adom.register_tableau(tableau)
        return adom

    def register_tableau(self, tableau: Tableau) -> None:
        """Ensure every variable of *tableau* has a dedicated fresh value."""
        for variable in tableau.ordered_variables():
            self.fresh_for(variable)

    def fresh_for(self, variable: Var) -> FreshValue:
        """The dedicated fresh value of *variable* (created on demand).

        Keyed by variable name: distinct tableaux that happen to reuse a
        name share the fresh value, which is harmless because valuations of
        different tableaux are enumerated independently.
        """
        existing = self._fresh_by_name.get(variable.name)
        if existing is not None:
            return existing
        fresh = self._supply.take(variable.name)
        self._fresh_by_name[variable.name] = fresh
        return fresh

    @property
    def fresh_pool(self) -> tuple[FreshValue, ...]:
        """All fresh values registered so far, in registration order."""
        return tuple(self._fresh_by_name.values())

    @property
    def all_values(self) -> frozenset[Any]:
        """Constants plus the whole fresh pool."""
        return self.constants | frozenset(self._fresh_by_name.values())

    # ------------------------------------------------------------------
    # Candidates
    # ------------------------------------------------------------------

    def candidates_for(self, tableau: Tableau, variable: Var,
                       fresh: str = "own",
                       extra: Iterable[Any] = ()) -> list[Any]:
        """Candidate values ``adom(y)`` for *variable* of *tableau*.

        *fresh* selects the fresh-value policy for infinite-domain
        variables: ``"own"`` (dedicated value only — the RCDP default),
        ``"all"`` (whole pool), or ``"none"`` (constants only).  *extra*
        adds further values (e.g. fresh values already pinned down by a
        candidate valuation set in the RCQP search); duplicates are
        removed.
        """
        domain = tableau.domain_of(variable)
        if not domain.is_infinite:
            return sorted(domain.values, key=repr)  # type: ignore[attr-defined]
        values = sorted(self.constants, key=repr)
        if fresh == "own":
            values.append(self.fresh_for(variable))
        elif fresh == "all":
            values.extend(self.fresh_pool)
        elif fresh != "none":
            raise ConstraintError(f"unknown fresh policy {fresh!r}")
        for value in extra:
            if value not in values:
                values.append(value)
        return values


RowFilter = "Callable[[str, tuple], bool]"


def _prepare_enumeration(tableau: Tableau, adom: ActiveDomain,
                         fresh: str, extra: Iterable[Any], row_filter):
    """Shared setup of the serial and sharded enumerators.

    Returns ``(variables, candidates, checks_at, rows_at, viable)``;
    *viable* is False when a ground tableau row already fails the row
    filter, making the whole enumeration empty.
    """
    variables = tableau.ordered_variables()
    candidates = {
        v: adom.candidates_for(tableau, v, fresh=fresh, extra=extra)
        for v in variables}
    order_index = {v: i for i, v in enumerate(variables)}

    # Pre-compile inequality checks: for each variable, the checks that
    # become decidable once it is bound (both endpoints bound or constant).
    checks_at: dict[Var, list[tuple[Any, Any]]] = {v: [] for v in variables}
    for left, right in tableau.inequalities:
        endpoints = [t for t in (left, right) if isinstance(t, Var)]
        if not endpoints:
            continue  # ground inequalities handled by Tableau construction
        latest = max(endpoints, key=lambda v: order_index[v])
        checks_at[latest].append((left, right))

    # Pre-compile row-completion points: each tableau row is checked at the
    # moment its last (per order) variable is bound.
    rows_at: dict[Var, list] = {v: [] for v in variables}
    viable = True
    if row_filter is not None:
        for row in tableau.rows:
            row_vars = row.variables()
            if not row_vars:
                if not row_filter(row.relation, row.instantiate({})):
                    viable = False
            else:
                latest = max(row_vars, key=lambda v: order_index[v])
                rows_at[latest].append(row)
    return variables, candidates, checks_at, rows_at, viable


def iter_valid_valuations(tableau: Tableau, adom: ActiveDomain,
                          fresh: str = "own",
                          extra: Iterable[Any] = (),
                          row_filter=None,
                          ) -> Iterator[Valuation]:
    """Enumerate the *valid* valuations of *tableau* over *adom*.

    A valuation is valid when every variable takes a value from its
    candidate list and all residual ``≠`` side conditions hold
    (equivalently: ``Q(μ(T_Q))`` is nonempty).  Inequalities are checked as
    soon as both endpoints are bound, pruning the search tree.

    *row_filter*, when given, is a predicate ``(relation, row) → bool``
    applied to each tableau row as soon as all its variables are bound;
    branches producing a rejected row are pruned.  The RCDP decider uses
    this for IND constraints, whose violation is tuple-local: any single
    instantiated row whose projection falls outside the master projection
    can never be part of a constraint-satisfying extension.

    Unsatisfiable tableaux yield nothing.
    """
    if not tableau.satisfiable:
        return
    variables, candidates, checks_at, rows_at, viable = \
        _prepare_enumeration(tableau, adom, fresh, extra, row_filter)
    if not viable:
        return
    valuation: Valuation = {}

    def value_of(term: Any) -> Any:
        if isinstance(term, Var):
            return valuation[term]
        return term.value

    def assign(index: int) -> Iterator[Valuation]:
        if index == len(variables):
            yield dict(valuation)
            return
        variable = variables[index]
        for candidate in candidates[variable]:
            valuation[variable] = candidate
            if not all(value_of(left) != value_of(right)
                       for left, right in checks_at[variable]):
                continue
            if row_filter is not None and not all(
                    row_filter(row.relation, row.instantiate(valuation))
                    for row in rows_at[variable]):
                continue
            yield from assign(index + 1)
        del valuation[variable]

    if not variables:
        # Ground tableau: the empty valuation, valid iff no ground
        # inequality failed (already encoded in `satisfiable`).
        yield {}
        return
    yield from assign(0)

#: Prefix-space oversubscription of the sharded enumerator: the prefix
#: depth is grown until the raw prefix space holds at least this many
#: prefixes per shard, so round-robin ownership stays balanced even when
#: the top-level candidate lists are tiny (e.g. BOOLEAN columns).
_OVERSUBSCRIBE = 4


def iter_sharded_valuations(tableau: Tableau, adom: ActiveDomain,
                            *, shard_index: int, shard_count: int,
                            fresh: str = "own",
                            extra: Iterable[Any] = (),
                            row_filter=None,
                            ) -> Iterator[tuple[int, int, Valuation]]:
    """One shard's slice of :func:`iter_valid_valuations`, with ranks.

    The valuation tree is split at a *prefix depth* ``k``: the first
    ``k`` variables are flattened into a lexicographic product whose raw
    combinations are numbered ``prefix_index = 0, 1, 2, ...`` (invalid
    prefixes — failed inequality or row-filter checks — keep their
    number but yield nothing).  Shard ``i`` of ``n`` owns exactly the
    prefixes with ``prefix_index % n == i`` and runs the ordinary DFS
    below each owned prefix, yielding ``(prefix_index, position,
    valuation)`` where *position* numbers the valid valuations within
    the prefix.

    Determinism guarantees:

    * The multiset union of all shards' valuations equals the serial
      stream, for every ``shard_count`` — ownership is a pure function
      of the prefix number.
    * Sorting the union by ``(prefix_index, position)`` reproduces the
      serial order exactly, because the prefix product enumerates the
      outermost DFS levels in DFS order.  A witness's rank therefore
      identifies "how early" the serial search would have found it, and
      the minimum rank across shards *is* the serial-first witness.
    * Each shard's own stream is rank-increasing, so a shard's first
      hit is its best.

    ``k`` is chosen as the smallest depth whose raw prefix space
    reaches ``shard_count × _OVERSUBSCRIBE`` combinations (capped at
    the variable count): sharding only the top variable would cap the
    useful parallelism at its candidate-list size, which is 2 for
    boolean columns.
    """
    if not 0 <= shard_index < shard_count:
        raise ConstraintError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}")
    if not tableau.satisfiable:
        return
    variables, candidates, checks_at, rows_at, viable = \
        _prepare_enumeration(tableau, adom, fresh, extra, row_filter)
    if not viable:
        return

    if not variables:
        # Ground tableau: a single empty valuation, owned by shard 0.
        if shard_index == 0:
            yield (0, 0, {})
        return

    depth, space = 0, 1
    target = shard_count * _OVERSUBSCRIBE
    while depth < len(variables) and space < target:
        space *= len(candidates[variables[depth]])
        depth += 1
    prefix_vars = variables[:depth]

    valuation: Valuation = {}

    def value_of(term: Any) -> Any:
        if isinstance(term, Var):
            return valuation[term]
        return term.value

    def admissible(variable: Var) -> bool:
        """The pruning checks of the serial DFS, for one bound variable."""
        if not all(value_of(left) != value_of(right)
                   for left, right in checks_at[variable]):
            return False
        if row_filter is not None and not all(
                row_filter(row.relation, row.instantiate(valuation))
                for row in rows_at[variable]):
            return False
        return True

    def assign(index: int) -> Iterator[Valuation]:
        if index == len(variables):
            yield dict(valuation)
            return
        variable = variables[index]
        for candidate in candidates[variable]:
            valuation[variable] = candidate
            if admissible(variable):
                yield from assign(index + 1)
        del valuation[variable]

    prefix_lists = [candidates[v] for v in prefix_vars]
    for prefix_index, combo in enumerate(itertools.product(*prefix_lists)):
        if prefix_index % shard_count != shard_index:
            continue
        valid = True
        for variable, candidate in zip(prefix_vars, combo):
            valuation[variable] = candidate
            if not admissible(variable):
                valid = False
                break
        if valid:
            position = 0
            for complete in assign(depth):
                yield (prefix_index, position, complete)
                position += 1
        valuation.clear()
