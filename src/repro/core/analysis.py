"""Compatibility shim — the boundedness analysis moved to
:mod:`repro.analysis.boundedness` when the static analyzer grew into a
package (it is now one rule, RC202, among many).

Importing from here keeps working; new code should import from
:mod:`repro.analysis` directly.
"""

from repro.analysis.boundedness import (BoundednessReport, VariableReport,
                                        VariableStatus, analyze_boundedness)

__all__ = ["VariableStatus", "VariableReport", "BoundednessReport",
           "analyze_boundedness"]
