"""Brute-force oracles and bounded semi-decision procedures.

Two roles:

1. **Cross-validation.**  ``brute_force_rcdp`` enumerates *all* extension
   sets ``Δ`` up to a size bound over an explicit value pool and checks the
   definition of relative completeness directly.  On decidable
   configurations, with the pool set to the active domain and the bound to
   the tableau size, it must agree with the characterization-based decider —
   the test suite and benchmarks exploit this.

2. **FO / FP.**  RCDP and RCQP are undecidable once FO or FP appears on
   either side (Theorems 3.1 and 4.1).  The bounded procedures here are the
   honest fallback: they can certify INCOMPLETE (a counterexample is a
   finite object) but only ever report ``COMPLETE_UP_TO_BOUND`` /
   ``EMPTY_UP_TO_BOUND`` on the other side.
"""

from __future__ import annotations

import itertools
from contextlib import nullcontext
from typing import Any, Iterable, Sequence

from repro.constraints.containment import (ContainmentConstraint,
                                           satisfies_all,
                                           satisfies_all_extension)
from repro.core.rcdp import (_extend_unvalidated, decide_rcdp,
                             ensure_partially_closed, resolve_context)
from repro.core.results import (IncompletenessCertificate, RCDPResult,
                                RCDPStatus, RCQPResult, RCQPStatus,
                                SearchStatistics)
from repro.engine import EvaluationContext, decision_key
from repro.errors import ExecutionInterrupted, UndecidableConfigurationError
from repro.obs import obs_of, obs_span, traced
from repro.relational.domain import FreshValueSupply
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema
from repro.runtime import (ExecutionGovernor, SearchCheckpoint,
                           resolve_governor, validate_exhaustion_mode)

__all__ = ["candidate_fact_pool", "default_value_pool",
           "resolve_value_pool", "brute_force_rcdp", "brute_force_rcqp"]

Fact = tuple[str, tuple]


def default_value_pool(schema: DatabaseSchema,
                       instances: Iterable[Instance],
                       queries: Iterable[Any],
                       fresh_count: int = 2) -> list[Any]:
    """Constants of *instances* and *queries* plus *fresh_count* fresh
    values — a sensible default pool for the brute-force procedures."""
    values: set[Any] = set()
    for instance in instances:
        values |= instance.active_domain()
    for query in queries:
        values |= set(query.constants())
    supply = FreshValueSupply(prefix="brute")
    pool = sorted(values, key=repr)
    pool.extend(supply.take_many(fresh_count))
    return pool


def candidate_fact_pool(schema: DatabaseSchema,
                        values: Sequence[Any],
                        relations: Iterable[str] | None = None,
                        ) -> list[Fact]:
    """All facts over *schema* whose infinite columns draw from *values*
    and whose finite columns draw from their (full) finite domains.

    *relations* optionally restricts the pool to a subset of relations —
    essential on wide schemas, where the full pool is ``|values|^arity``
    per relation.
    """
    facts: list[Fact] = []
    chosen = None if relations is None else set(relations)
    for relation in schema:
        if chosen is not None and relation.name not in chosen:
            continue
        per_column: list[list[Any]] = []
        for attribute in relation.attributes:
            if attribute.domain.is_infinite:
                per_column.append(list(values))
            else:
                per_column.append(
                    sorted(attribute.domain.values, key=repr))
        for row in itertools.product(*per_column):
            facts.append((relation.name, row))
    return facts


def resolve_value_pool(query: Any,
                       constraints: Sequence[ContainmentConstraint],
                       schema: DatabaseSchema,
                       instances: Sequence[Instance],
                       values: Sequence[Any] | None,
                       context: EvaluationContext | None = None,
                       ) -> Sequence[Any]:
    """The brute-force value pool for one decision, memoized by content.

    A caller-supplied *values* sequence wins.  Otherwise the default pool
    is built from *instances* and the query/constraint constants, and —
    when a shared context is available — memoized under a
    :func:`~repro.engine.keys.decision_key`.  Content-based keys make the
    memo entry independent of object identity, so the key is picklable
    and stays valid across process boundaries (the parallel workers
    rebuild their own contexts from pickled inputs; an ``id()``-based key
    would silently never hit there, and could collide after the pinned
    objects are collected).
    """
    if values is not None:
        return values
    queries = [query] + [c.query for c in constraints]

    def _build_pool() -> list[Any]:
        return default_value_pool(schema, instances, queries)

    if context is None:
        return _build_pool()
    return context.memo(
        decision_key("value-pool", schema, *instances, query, *constraints),
        _build_pool,
        pin=(*instances, query, *constraints))


@traced("brute_force_rcdp")
def brute_force_rcdp(query: Any, database: Instance, master: Instance,
                     constraints: Sequence[ContainmentConstraint],
                     *, max_extra_facts: int,
                     values: Sequence[Any] | None = None,
                     relations: Iterable[str] | None = None,
                     check_partially_closed: bool = True,
                     budget: int | None = None,
                     governor: ExecutionGovernor | None = None,
                     on_exhausted: str = "error",
                     resume_from: SearchCheckpoint | None = None,
                     use_engine: bool = True,
                     context: EvaluationContext | None = None,
                     backend: str | None = None,
                     workers: int | None = 1,
                     ) -> RCDPResult:
    """Check relative completeness by exhaustive extension enumeration.

    Enumerates every set ``Δ`` of at most *max_extra_facts* new facts over
    the value pool, smallest first; the first ``Δ`` with
    ``(D ∪ Δ, Dm) ⊨ V`` and ``Q(D ∪ Δ) ≠ Q(D)`` yields INCOMPLETE.
    Otherwise the verdict is ``COMPLETE_UP_TO_BOUND`` — a genuine COMPLETE
    claim would require the characterization-based decider.

    Works for **any** query language the library evaluates, including FO
    and FP, where this is the only procedure available.

    Governed like the exact deciders (``"extensions"`` ticks, one per
    candidate ``Δ``); the checkpoint cursor is the flat count of extension
    sets already examined, in deterministic smallest-first order.
    *workers* shards the enumeration across processes
    (``docs/PARALLEL.md``); the verdict is worker-count invariant.
    """
    from repro.parallel.partition import resolve_workers

    count = resolve_workers(workers)
    if count > 1:
        from repro.parallel.api import brute_force_rcdp_parallel

        return brute_force_rcdp_parallel(
            query, database, master, constraints, workers=count,
            max_extra_facts=max_extra_facts, values=values,
            relations=relations,
            check_partially_closed=check_partially_closed, budget=budget,
            governor=governor, on_exhausted=on_exhausted,
            resume_from=resume_from, use_engine=use_engine,
            context=context, backend=backend)
    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    obs = obs_of(governor)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    if check_partially_closed:
        with obs_span(obs, "check_ccs"):
            ensure_partially_closed(database, master, constraints, context)
    values = resolve_value_pool(query, constraints, database.schema,
                                (database, master), values, context)
    with obs_span(obs, "evaluate_Q"):
        baseline = (context.evaluate(query, database)
                    if context is not None else query.evaluate(database))
    existing = set(database.facts())
    pool = [fact for fact in candidate_fact_pool(database.schema, values,
                                                 relations=relations)
            if fact not in existing]

    base_stats = SearchStatistics()
    to_skip = 0
    if resume_from is not None:
        resume_from.require("brute-rcdp")
        (to_skip,) = resume_from.cursor
        base_stats = resume_from.base_statistics()
    position = to_skip
    examined = 0
    checks = 0

    def _stats() -> SearchStatistics:
        stats = base_stats.merged(SearchStatistics(
            valuations_examined=examined, constraint_checks=checks))
        if engine_base is not None:
            stats = stats.merged(context.statistics.since(engine_base))
        return stats

    governed = (context.governed(governor) if context is not None
                else nullcontext())
    try:
        skip = to_skip
        with governed, obs_span(obs, "enumerate_extensions"):
            for size in range(1, max_extra_facts + 1):
                for combo in itertools.combinations(pool, size):
                    if skip > 0:
                        skip -= 1
                        continue
                    if governor is not None:
                        governor.tick("extensions")
                    examined += 1
                    delta = list(combo)
                    checks += 1
                    # Evaluate Q(D ∪ Δ) at most once per candidate; the
                    # != test (not ⊋) also catches FO answer *loss*.
                    if context is not None:
                        compatible = satisfies_all_extension(
                            database, delta, master, constraints,
                            context=context)
                        extended_answers = (
                            context.evaluate_extension(query, database, delta)
                            if compatible else None)
                    else:
                        extended = _extend_unvalidated(database, delta)
                        compatible = satisfies_all(extended, master,
                                                   constraints)
                        extended_answers = (query.evaluate(extended)
                                            if compatible else None)
                    if compatible and extended_answers != baseline:
                        new_answers = extended_answers - baseline
                        answer = (next(iter(new_answers)) if new_answers
                                  else ())
                        return RCDPResult(
                            status=RCDPStatus.INCOMPLETE,
                            certificate=IncompletenessCertificate(
                                extension_facts=tuple(combo),
                                new_answer=answer),
                            explanation=(
                                f"brute force found a {size}-fact "
                                f"consistent extension changing the answer"),
                            statistics=_stats(),
                            bound=max_extra_facts)
                    position += 1
    except ExecutionInterrupted as interrupt:
        checkpoint = SearchCheckpoint(
            procedure="brute-rcdp", cursor=(position,),
            statistics=_stats())
        partial = RCDPResult(
            status=RCDPStatus.EXHAUSTED,
            explanation=(
                f"brute-force search interrupted ({interrupt.reason}) "
                f"after {position} extension set(s); resume from the "
                f"checkpoint to continue"),
            statistics=_stats(), checkpoint=checkpoint,
            interrupted=interrupt.reason, bound=max_extra_facts)
        if on_exhausted == "error":
            interrupt.statistics = partial.statistics
            interrupt.partial_result = partial
            interrupt.checkpoint = checkpoint
            raise
        return partial
    return RCDPResult(
        status=RCDPStatus.COMPLETE_UP_TO_BOUND,
        explanation=(
            f"no consistent answer-changing extension of ≤ "
            f"{max_extra_facts} fact(s) over a pool of {len(pool)} "
            f"candidates"),
        statistics=_stats(),
        bound=max_extra_facts)


@traced("brute_force_rcqp")
def brute_force_rcqp(query: Any, master: Instance,
                     constraints: Sequence[ContainmentConstraint],
                     schema: DatabaseSchema,
                     *, max_database_size: int,
                     values: Sequence[Any] | None = None,
                     completeness_bound: int | None = None,
                     budget: int | None = None,
                     governor: ExecutionGovernor | None = None,
                     on_exhausted: str = "error",
                     resume_from: SearchCheckpoint | None = None,
                     use_engine: bool = True,
                     context: EvaluationContext | None = None,
                     backend: str | None = None,
                     workers: int | None = 1,
                     ) -> RCQPResult:
    """Search for a relatively complete database by enumeration.

    Enumerates candidate databases ``D`` of at most *max_database_size*
    facts over the value pool (smallest first); each partially closed
    candidate is tested for completeness:

    * for decidable configurations, with the exact RCDP decider — a hit is
      a sound NONEMPTY verdict with ``D`` as witness;
    * for FO/FP (undecidable), with :func:`brute_force_rcdp` under
      *completeness_bound* — a hit is then only evidence, and the result
      explanation says so.

    Exhausting the search yields ``EMPTY_UP_TO_BOUND``; an exact EMPTY
    answer for decidable configurations comes from
    :func:`repro.core.rcqp.decide_rcqp`.

    Governed (``"candidates"`` ticks, one per candidate database, with the
    nested completeness checks charging the same governor); the checkpoint
    cursor is the flat count of candidate databases fully processed.
    *workers* shards the candidate enumeration across processes
    (``docs/PARALLEL.md``); the verdict is worker-count invariant.
    """
    from repro.parallel.partition import resolve_workers

    count = resolve_workers(workers)
    if count > 1:
        from repro.parallel.api import brute_force_rcqp_parallel

        return brute_force_rcqp_parallel(
            query, master, constraints, schema, workers=count,
            max_database_size=max_database_size, values=values,
            completeness_bound=completeness_bound, budget=budget,
            governor=governor, on_exhausted=on_exhausted,
            resume_from=resume_from, use_engine=use_engine,
            context=context, backend=backend)
    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    obs = obs_of(governor)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    values = resolve_value_pool(query, constraints, schema, (master,),
                                values, context)
    pool = candidate_fact_pool(schema, values)
    empty = Instance.empty(schema)

    decidable = True
    try:
        from repro.core.rcdp import assert_decidable_configuration

        assert_decidable_configuration(query, constraints)
    except UndecidableConfigurationError as exc:
        decidable = False
        if completeness_bound is None:
            raise UndecidableConfigurationError(
                "brute_force_rcqp on an undecidable configuration needs "
                "an explicit completeness_bound") from exc

    base_stats = SearchStatistics()
    to_skip = 0
    if resume_from is not None:
        resume_from.require("brute-rcqp")
        (to_skip,) = resume_from.cursor
        base_stats = resume_from.base_statistics()
    position = to_skip
    examined = 0

    def _stats() -> SearchStatistics:
        stats = base_stats.merged(SearchStatistics(
            candidate_sets_examined=examined))
        if engine_base is not None:
            stats = stats.merged(context.statistics.since(engine_base))
        return stats

    governed = (context.governed(governor) if context is not None
                else nullcontext())
    try:
        skip = to_skip
        with governed, obs_span(obs, "enumerate_candidates"):
            for size in range(0, max_database_size + 1):
                for combo in itertools.combinations(pool, size):
                    if skip > 0:
                        skip -= 1
                        continue
                    if governor is not None:
                        governor.tick("candidates")
                    examined += 1
                    combo_facts = list(combo)
                    if context is not None:
                        compatible = satisfies_all_extension(
                            empty, combo_facts, master, constraints,
                            context=context)
                    else:
                        candidate = _extend_unvalidated(empty, combo_facts)
                        compatible = satisfies_all(candidate, master,
                                                   constraints)
                    if not compatible:
                        position += 1
                        continue
                    if context is not None:
                        candidate = _extend_unvalidated(empty, combo_facts)
                    if decidable:
                        verdict = decide_rcdp(
                            query, candidate, master, constraints,
                            check_partially_closed=False,
                            governor=governor, context=context,
                            use_engine=context is not None)
                        sound = verdict.status is RCDPStatus.COMPLETE
                    else:
                        verdict = brute_force_rcdp(
                            query, candidate, master, constraints,
                            max_extra_facts=completeness_bound,
                            values=values, check_partially_closed=False,
                            governor=governor, context=context,
                            use_engine=context is not None)
                        sound = (verdict.status
                                 is RCDPStatus.COMPLETE_UP_TO_BOUND)
                    if sound:
                        note = ("witness verified by the exact RCDP decider"
                                if decidable else
                                f"witness only checked up to extensions of "
                                f"{completeness_bound} fact(s) — "
                                f"configuration is undecidable")
                        return RCQPResult(
                            status=RCQPStatus.NONEMPTY,
                            witness=candidate,
                            explanation=note,
                            statistics=_stats(),
                            bound=max_database_size)
                    position += 1
    except ExecutionInterrupted as interrupt:
        checkpoint = SearchCheckpoint(
            procedure="brute-rcqp", cursor=(position,),
            statistics=_stats())
        partial = RCQPResult(
            status=RCQPStatus.EXHAUSTED,
            explanation=(
                f"brute-force search interrupted ({interrupt.reason}) "
                f"after {position} candidate database(s); resume from "
                f"the checkpoint to continue"),
            statistics=_stats(), checkpoint=checkpoint,
            interrupted=interrupt.reason, bound=max_database_size)
        if on_exhausted == "error":
            interrupt.statistics = partial.statistics
            interrupt.partial_result = partial
            interrupt.checkpoint = checkpoint
            raise
        return partial
    return RCQPResult(
        status=RCQPStatus.EMPTY_UP_TO_BOUND,
        explanation=(
            f"no relatively complete database of ≤ {max_database_size} "
            f"fact(s) over a pool of {len(pool)} candidate facts"),
        statistics=_stats(),
        bound=max_database_size)
