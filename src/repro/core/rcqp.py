"""RCQP — the relatively complete query problem (Section 4).

Given ``Q``, ``Dm``, and ``V``, decide whether some relatively complete
database exists, i.e. whether ``RCQ(Q, Dm, V)`` is nonempty.

Two exact engines:

* :func:`decide_rcqp_with_inds` — the coNP procedure of Theorem 4.5(1),
  driven by the *syntactic* boundedness characterization of
  Proposition 4.3 (conditions E3/E4): every infinite-domain output variable
  must sit in an IND-projected column, unless the disjunct admits no
  constraint-compatible valid valuation at all.

* :func:`decide_rcqp` — the general characterization of Propositions 4.2 /
  Corollary 4.4 (conditions E1/E2, E5/E6): search for a set ``V`` of partial
  valuations of the constraint tableaux such that ``D_V`` satisfies ``V``
  and *bounds* every constraint-compatible valid valuation of the query
  tableau.  NONEMPTY verdicts construct the witness database (``D_V`` plus
  the ground tableau rows) and re-verify it through the exact RCDP decider,
  so they are sound by construction.

The general search is parameterized (valuation-set size, rows instantiated
per partial valuation); the problem is NEXPTIME-complete, so *some* budget
is unavoidable.  When the budget covers the whole unit space the EMPTY
verdict is exact; otherwise it is reported as ``EMPTY_UP_TO_BOUND``.

Both engines are *governed* (:mod:`repro.runtime`): one
:class:`~repro.runtime.ExecutionGovernor` is threaded through the unit
enumeration, the candidate-set search, and every nested ``decide_rcdp`` /
``make_complete`` call, so a single budget bounds the whole composite
NEXPTIME decision.  Interrupted searches degrade to an ``EXHAUSTED``
result with statistics and a resumable checkpoint (or raise with those
attached, under ``on_exhausted="error"``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.analysis.driver import validate_for_decision
from repro.constraints.containment import (ContainmentConstraint,
                                           satisfies_all,
                                           satisfies_all_extension)
from repro.core.rcdp import (_extend_unvalidated,
                             assert_decidable_configuration, decide_rcdp,
                             resolve_context)
from repro.core.results import (RCDPStatus, RCQPResult, RCQPStatus,
                                SearchStatistics)
from repro.engine import EvaluationContext
from repro.core.valuations import ActiveDomain, iter_valid_valuations
from repro.core.witness import make_complete
from repro.errors import (ConstraintError, ExecutionInterrupted, ReproError)
from repro.obs import obs_of, obs_span, traced
from repro.queries.tableau import Tableau
from repro.queries.terms import Const, Var
from repro.relational.domain import is_fresh
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema
from repro.runtime import (ExecutionGovernor, SearchCheckpoint,
                           resolve_governor, validate_exhaustion_mode)

__all__ = ["decide_rcqp", "decide_rcqp_with_inds", "ValuationUnit"]

Fact = tuple[str, tuple]


def _query_tableaux(query: Any, schema: DatabaseSchema) -> list[Tableau]:
    """Satisfiable tableaux of the CQ disjuncts of *query*."""
    return [t for t in (Tableau(d, schema) for d in query.to_cq_disjuncts())
            if t.satisfiable]


def _facts_instance(schema: DatabaseSchema,
                    facts: Iterable[Fact]) -> Instance:
    return _extend_unvalidated(Instance.empty(schema), list(facts))


# ---------------------------------------------------------------------------
# INDs: the coNP algorithm (Theorem 4.5(1), Proposition 4.3)
# ---------------------------------------------------------------------------


def _ind_covers_variable(tableau: Tableau, variable: Var,
                         constraints: Sequence[ContainmentConstraint],
                         ) -> bool:
    """Condition E4: *variable* occurs in a column projected by some IND."""
    for constraint in constraints:
        relation, columns = constraint.ind_source()
        column_set = set(columns)
        for row in tableau.rows:
            if row.relation != relation:
                continue
            for position, term in enumerate(row.terms):
                if term == variable and position in column_set:
                    return True
    return False


@traced("decide_rcqp_with_inds")
def decide_rcqp_with_inds(query: Any, master: Instance,
                          constraints: Sequence[ContainmentConstraint],
                          schema: DatabaseSchema,
                          *, construct_witness: bool = True,
                          verify_witness: bool = True,
                          budget: int | None = None,
                          governor: ExecutionGovernor | None = None,
                          on_exhausted: str = "error",
                          resume_from: SearchCheckpoint | None = None,
                          use_engine: bool = True,
                          context: EvaluationContext | None = None,
                          backend: str | None = None,
                          workers: int | None = 1,
                          ) -> RCQPResult:
    """Decide RCQP when every containment constraint is an IND.

    Implements Proposition 4.3: ``RCQ(Q, Dm, V)`` is nonempty iff every
    disjunct is syntactically bounded (each infinite-domain output variable
    has a finite attribute domain (E3) or is IND-covered (E4)), or the
    disjunct admits no valid valuation satisfying ``V``.

    On NONEMPTY the witness database from the proof is constructed: for
    every achievable output tuple over the active domain, one instantiated
    tableau producing it.

    Governed like :func:`decide_rcdp`; the checkpoint cursor is
    ``(phase, index, consumed)`` where phase 0 is the relevance/
    boundedness scan (index into the tableau list) and phase 1 the
    witness construction (index into the relevant-tableau list).
    *workers* shards both valuation scans across processes
    (``docs/PARALLEL.md``); the verdict is worker-count invariant.
    """
    from repro.parallel.partition import resolve_workers

    count = resolve_workers(workers)
    if count > 1:
        from repro.parallel.api import decide_rcqp_with_inds_parallel

        return decide_rcqp_with_inds_parallel(
            query, master, constraints, schema, workers=count,
            construct_witness=construct_witness,
            verify_witness=verify_witness, budget=budget,
            governor=governor, on_exhausted=on_exhausted,
            resume_from=resume_from, use_engine=use_engine,
            context=context, backend=backend)
    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    obs = obs_of(governor)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    assert_decidable_configuration(query, constraints)
    for constraint in constraints:
        if not constraint.is_ind():
            raise ConstraintError(
                f"decide_rcqp_with_inds requires IND constraints; "
                f"{constraint.name!r} is not an IND")
    query.validate(schema)

    tableaux = _query_tableaux(query, schema)
    adom = ActiveDomain.build(
        instances=(master,),
        queries=[query] + [c.query for c in constraints],
        tableaux=tableaux)
    # All per-valuation Δ-instances extend the one empty base, so with a
    # context their constraint checks run on the delta path against it.
    empty_base = Instance.empty(schema)

    phase, start_index, start_consumed = 0, 0, 0
    base_stats = SearchStatistics()
    relevant_indices: list[int] = []
    witness_facts: list[Fact] = []
    covered_seed: tuple = ()
    if resume_from is not None:
        resume_from.require("rcqp-inds")
        phase, start_index, start_consumed = resume_from.cursor
        base_stats = resume_from.base_statistics()
        if phase == 0:
            relevant_indices = list(resume_from.payload[0]) \
                if resume_from.payload else []
        else:
            rel_idx, facts, covered_seed = resume_from.payload
            relevant_indices = list(rel_idx)
            witness_facts = list(facts)

    examined = 0
    def _stats() -> SearchStatistics:
        stats = base_stats.merged(
            SearchStatistics(valuations_examined=examined))
        if context is not None:
            stats = stats.merged(context.statistics.since(engine_base))
        return stats

    # Mutable frontier the except-block snapshots into a checkpoint.
    frontier: dict[str, Any] = {
        "phase": phase, "index": start_index, "consumed": start_consumed,
        "covered": set(covered_seed)}

    prev_governor = context.governor if context is not None else None
    if context is not None:
        context.governor = governor
    try:
        if phase == 0:
            with obs_span(obs, "enumerate_E3"):
                for t_index, tableau in enumerate(tableaux):
                    if t_index < start_index:
                        continue
                    to_skip = (start_consumed if t_index == start_index
                               else 0)
                    frontier["index"], frontier["consumed"] = \
                        t_index, to_skip
                    compatible_exists = False
                    for valuation in iter_valid_valuations(
                            tableau, adom, fresh="own"):
                        if to_skip > 0:
                            to_skip -= 1
                            continue
                        if governor is not None:
                            governor.tick("valuations")
                        examined += 1
                        delta = tableau.instantiate(valuation)
                        if context is not None:
                            compatible = satisfies_all_extension(
                                empty_base, delta, master, constraints,
                                context=context)
                        else:
                            compatible = satisfies_all(
                                _facts_instance(schema, delta), master,
                                constraints)
                        if compatible:
                            compatible_exists = True
                            break
                        frontier["consumed"] += 1
                    if not compatible_exists:
                        # The disjunct can never fire in a partially
                        # closed database; it cannot break boundedness
                        # (second case of Prop. 4.3).
                        continue
                    relevant_indices.append(t_index)
                    for variable in sorted(tableau.summary_variables(),
                                           key=lambda v: v.name):
                        if tableau.has_finite_domain(variable):
                            continue  # condition E3
                        if not _ind_covers_variable(tableau, variable,
                                                    constraints):
                            return RCQPResult(
                                status=RCQPStatus.EMPTY,
                                explanation=(
                                    f"output variable {variable!r} of "
                                    f"disjunct {tableau.query.name!r} "
                                    f"has an infinite domain and is not "
                                    f"covered by any IND (conditions "
                                    f"E3/E4 both fail)"),
                                statistics=_stats())
            frontier.update(phase=1, index=0, consumed=0)
            start_index, start_consumed = 0, 0
            covered_seed = ()

        witness = None
        if construct_witness:
            relevant = [tableaux[i] for i in relevant_indices]
            frontier["phase"] = 1
            with obs_span(obs, "enumerate_E4"):
                for r_pos, tableau in enumerate(relevant):
                    if r_pos < start_index:
                        continue
                    to_skip = (start_consumed if r_pos == start_index
                               else 0)
                    covered: set[tuple] = (
                        set(covered_seed) if r_pos == start_index
                        else set())
                    frontier.update(index=r_pos, consumed=to_skip,
                                    covered=covered)
                    for valuation in iter_valid_valuations(
                            tableau, adom, fresh="own"):
                        if to_skip > 0:
                            to_skip -= 1
                            continue
                        if governor is not None:
                            governor.tick("valuations")
                        examined += 1
                        summary = tableau.summary_under(valuation)
                        if summary not in covered:
                            delta = tableau.instantiate(valuation)
                            if context is not None:
                                compatible = satisfies_all_extension(
                                    empty_base, delta, master,
                                    constraints, context=context)
                            else:
                                compatible = satisfies_all(
                                    _facts_instance(schema, delta),
                                    master, constraints)
                            if compatible:
                                covered.add(summary)
                                witness_facts.extend(delta)
                        frontier["consumed"] += 1
            # Verification restarts from scratch on resume: mark the
            # frontier past the whole build so a resumed run re-enters
            # here directly with the payload facts.
            frontier.update(index=len(relevant), consumed=0,
                            covered=set())
            witness = _facts_instance(schema, witness_facts)
            if verify_witness:
                with obs_span(obs, "verify_witness"):
                    verdict = decide_rcdp(
                        query, witness, master, constraints,
                        governor=governor, context=context,
                        use_engine=context is not None)
                if verdict.status is not RCDPStatus.COMPLETE:
                    raise ReproError(
                        "internal error: Proposition 4.3 witness failed "
                        "RCDP verification — please report this as a bug")
    except ExecutionInterrupted as interrupt:
        if frontier["phase"] == 0:
            payload: tuple = (tuple(relevant_indices),)
        else:
            payload = (tuple(relevant_indices), tuple(witness_facts),
                       tuple(sorted(frontier["covered"], key=repr)))
        checkpoint = SearchCheckpoint(
            procedure="rcqp-inds",
            cursor=(frontier["phase"], frontier["index"],
                    frontier["consumed"]),
            statistics=_stats(), payload=payload)
        partial = RCQPResult(
            status=RCQPStatus.EXHAUSTED,
            explanation=(
                f"search interrupted ({interrupt.reason}) after "
                f"{_stats().valuations_examined} valuation(s); resume "
                f"from the checkpoint to continue"),
            statistics=_stats(), checkpoint=checkpoint,
            interrupted=interrupt.reason)
        if on_exhausted == "error":
            interrupt.statistics = _stats()
            interrupt.partial_result = partial
            interrupt.checkpoint = checkpoint
            raise
        return partial
    finally:
        if context is not None:
            context.governor = prev_governor
    return RCQPResult(
        status=RCQPStatus.NONEMPTY,
        witness=witness,
        explanation=(
            "every relevant disjunct is syntactically bounded "
            "(conditions E3/E4); witness covers all achievable output "
            "tuples over the active domain"),
        statistics=_stats())


# ---------------------------------------------------------------------------
# General case: conditions E1/E2 and E5/E6 (Propositions 4.2, Corollary 4.4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ValuationUnit:
    """One partial valuation ``ν_i`` of one constraint tableau.

    *facts* are the instantiated tuple templates ``ν_i(S)`` for the chosen
    row subset ``S``; *summary_values* the values of the constraint-query
    summary positions that the valuation defines (used by the boundedness
    test "μ(y) appears in ν_j(u_j)").
    """

    facts: frozenset[Fact]
    summary_values: frozenset

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}{r!r}" for n, r in sorted(
            self.facts, key=repr))
        return f"Unit[{{{inner}}} ↦ {sorted(self.summary_values, key=repr)}]"


def _constraint_tableaux(constraints: Sequence[ContainmentConstraint],
                         schema: DatabaseSchema) -> list[Tableau]:
    tableaux: list[Tableau] = []
    for constraint in constraints:
        for disjunct in constraint.query.to_cq_disjuncts():
            tableau = Tableau(disjunct, schema)
            if tableau.satisfiable:
                tableaux.append(tableau)
    return tableaux


def _enumerate_units(cc_tableaux: Sequence[Tableau], adom: ActiveDomain,
                     max_rows_per_unit: int,
                     governor: ExecutionGovernor | None = None,
                     skip: int = 0,
                     progress: dict | None = None) -> list[ValuationUnit]:
    """All partial valuations of constraint tableaux over the active domain.

    Each infinite-domain variable ranges over the shared constants plus its
    own dedicated fresh value (see the dedicated-fresh discussion in
    :mod:`repro.core.valuations`); *max_rows_per_unit* caps how many tuple
    templates one partial valuation instantiates.

    The enumeration charges one ``"units"`` tick per candidate partial
    valuation; the first *skip* candidates are charged nothing (they were
    already paid for by the interrupted run being resumed).  *progress*,
    when given, tracks the number of completed candidates under the key
    ``"units"`` so an interrupt handler can checkpoint the frontier.
    """
    units: list[ValuationUnit] = []
    seen: set[tuple[frozenset, frozenset]] = set()
    completed = 0
    for tableau in cc_tableaux:
        rows = tableau.rows
        row_indices = range(len(rows))
        max_rows = min(max_rows_per_unit, len(rows))
        for size in range(1, max_rows + 1):
            for subset in itertools.combinations(row_indices, size):
                chosen = [rows[i] for i in subset]
                variables = sorted(
                    {v for row in chosen for v in row.variables()},
                    key=lambda v: v.name)
                candidate_lists = [
                    adom.candidates_for(tableau, v, fresh="own")
                    for v in variables]
                for combo in itertools.product(*candidate_lists):
                    if governor is not None and completed >= skip:
                        governor.tick("units")
                    valuation = dict(zip(variables, combo))
                    facts = frozenset(
                        (row.relation, row.instantiate(valuation))
                        for row in chosen)
                    summary_values = []
                    for term in tableau.summary:
                        if isinstance(term, Const):
                            summary_values.append(term.value)
                        elif term in valuation:
                            summary_values.append(valuation[term])
                    key = (facts, frozenset(summary_values))
                    completed += 1
                    if progress is not None:
                        progress["units"] = completed
                    if key in seen:
                        continue
                    seen.add(key)
                    units.append(ValuationUnit(
                        facts=facts,
                        summary_values=frozenset(summary_values)))
    return units


def _candidate_is_bounding(schema: DatabaseSchema, master: Instance,
                           constraints: Sequence[ContainmentConstraint],
                           q_tableaux: Sequence[Tableau],
                           adom: ActiveDomain,
                           dv_facts: frozenset[Fact],
                           bound_values: frozenset,
                           governor: ExecutionGovernor | None = None,
                           context: EvaluationContext | None = None,
                           ) -> bool:
    """Condition E2/E6 for one candidate set: every constraint-compatible
    valid valuation must have all its infinite-domain output variables
    bounded by the candidate's summary values."""
    dv_instance = _facts_instance(schema, dv_facts)
    if not satisfies_all(dv_instance, master, constraints, context=context):
        return False
    extra_values = {value for _, row in dv_facts for value in row
                    if is_fresh(value)}
    extra_values |= {value for value in bound_values if is_fresh(value)}
    for tableau in q_tableaux:
        infinite_vars = [
            v for v in sorted(tableau.summary_variables(),
                              key=lambda v: v.name)
            if not tableau.has_finite_domain(v)]
        for valuation in iter_valid_valuations(
                tableau, adom, fresh="own", extra=sorted(
                    extra_values, key=repr)):
            if governor is not None:
                governor.tick("valuations")
            if all(valuation[v] in bound_values for v in infinite_vars):
                continue
            delta = tableau.instantiate(valuation)
            if context is not None:
                compatible = satisfies_all_extension(
                    dv_instance, delta, master, constraints,
                    context=context)
            else:
                compatible = satisfies_all(
                    _extend_unvalidated(dv_instance, delta), master,
                    constraints)
            if compatible:
                return False
    return True


@traced("decide_rcqp")
def decide_rcqp(query: Any, master: Instance,
                constraints: Sequence[ContainmentConstraint],
                schema: DatabaseSchema,
                *, max_valuation_set_size: int = 2,
                max_rows_per_unit: int = 1,
                max_completion_rounds: int = 64,
                verify_witness: bool = True,
                budget: int | None = None,
                governor: ExecutionGovernor | None = None,
                on_exhausted: str = "error",
                resume_from: SearchCheckpoint | None = None,
                use_engine: bool = True,
                context: EvaluationContext | None = None,
                backend: str | None = None,
                analyze: bool = True,
                analysis: Any = None,
                workers: int | None = 1) -> RCQPResult:
    """Decide RCQP for CQ/UCQ/∃FO⁺ queries and constraints.

    Dispatches to the syntactic IND algorithm when every constraint is an
    IND.  Otherwise implements the boundedness characterization:

    * **E1/E5** — if every output variable of every (relevant) disjunct has
      a finite domain, the query is relatively complete; the witness is
      built by certificate-completion from the empty database, which
      terminates because the answer space over the active domain is finite.
    * **E2/E6** — search over candidate sets ``V`` of partial valuations of
      the constraint tableaux (at most *max_valuation_set_size* units, each
      instantiating at most *max_rows_per_unit* tuple templates).  A
      candidate is *bounding* when ``D_V ⊨ V`` and every
      constraint-compatible valid valuation of the query has its
      infinite-domain output values among the candidate's summary values.
      Bounding candidates yield a witness (``D_V`` plus ground tableau
      rows, closed under certificate completion) that is re-verified with
      the exact RCDP decider before NONEMPTY is returned.

    EMPTY is exact when the unit budget covers the whole unit space;
    otherwise ``EMPTY_UP_TO_BOUND`` is returned.

    The shared *governor* spans unit enumeration (``"units"`` ticks), the
    candidate-set loop (``"candidate_sets"`` ticks), and every nested
    bounding check, completion, and RCDP verification (``"valuations"``
    ticks).  The checkpoint cursor is ``(phase, n)``: phase 0 is the unit
    enumeration (*n* partial valuations built), phase 1 the candidate-set
    search (*n* candidate sets fully processed).

    *workers* shards the search across processes (``docs/PARALLEL.md``);
    the verdict is worker-count invariant, and parallel checkpoints must
    be resumed with the same worker count.
    """
    from repro.parallel.partition import resolve_workers

    validate_exhaustion_mode(on_exhausted)
    if constraints and all(c.is_ind() for c in constraints):
        return decide_rcqp_with_inds(query, master, constraints, schema,
                                     verify_witness=verify_witness,
                                     budget=budget, governor=governor,
                                     on_exhausted=on_exhausted,
                                     resume_from=resume_from,
                                     use_engine=use_engine,
                                     context=context, backend=backend,
                                     workers=workers)
    count = resolve_workers(workers)
    if count > 1:
        from repro.parallel.api import decide_rcqp_parallel

        return decide_rcqp_parallel(
            query, master, constraints, schema, workers=count,
            max_valuation_set_size=max_valuation_set_size,
            max_rows_per_unit=max_rows_per_unit,
            max_completion_rounds=max_completion_rounds,
            verify_witness=verify_witness, budget=budget,
            governor=governor, on_exhausted=on_exhausted,
            resume_from=resume_from, use_engine=use_engine,
            context=context, backend=backend, analyze=analyze,
            analysis=analysis)
    governor = resolve_governor(governor, budget)
    obs = obs_of(governor)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    assert_decidable_configuration(query, constraints)
    if analysis is None and analyze:
        # RCQP has no database D — the scenario rules that need one
        # (partial closedness) skip themselves.
        with obs_span(obs, "analyze"):
            analysis = validate_for_decision(
                query, constraints, schema=schema,
                master_schema=master.schema, master=master)
    fresh_warnings = (len(analysis.warnings)
                      if analysis is not None and resume_from is None
                      else 0)
    query.validate(schema)

    q_tableaux = _query_tableaux(query, schema)
    cc_tableaux = _constraint_tableaux(constraints, schema)
    adom = ActiveDomain.build(
        instances=(master,),
        queries=[query] + [c.query for c in constraints],
        tableaux=list(q_tableaux) + cc_tableaux)

    if not q_tableaux:
        return RCQPResult(
            status=RCQPStatus.NONEMPTY,
            witness=Instance.empty(schema),
            explanation="the query is unsatisfiable; every partially "
                        "closed database is trivially complete",
            statistics=SearchStatistics(
                analysis_warnings=fresh_warnings))

    phase, start_n = 0, 0
    base_stats = SearchStatistics()
    if resume_from is not None:
        resume_from.require("rcqp")
        phase, start_n = resume_from.cursor
        base_stats = resume_from.base_statistics()

    examined = 0
    new_units = 0
    frontier: dict[str, Any] = {"phase": phase, "units": start_n,
                                "sets": start_n if phase == 1 else 0}
    def _stats() -> SearchStatistics:
        stats = base_stats.merged(SearchStatistics(
            candidate_sets_examined=examined, units_examined=new_units,
            analysis_warnings=fresh_warnings))
        if context is not None:
            stats = stats.merged(context.statistics.since(engine_base))
        return stats

    def _interrupted_result(interrupt: ExecutionInterrupted) -> RCQPResult:
        if frontier["phase"] == 0:
            cursor = (0, frontier["units"])
        else:
            cursor = (1, frontier["sets"])
        checkpoint = SearchCheckpoint(
            procedure="rcqp", cursor=cursor, statistics=_stats())
        partial = RCQPResult(
            status=RCQPStatus.EXHAUSTED,
            explanation=(
                f"search interrupted ({interrupt.reason}) at "
                f"{'unit enumeration' if cursor[0] == 0 else 'candidate-set search'}"
                f" position {cursor[1]}; resume from the checkpoint "
                f"to continue"),
            statistics=_stats(), checkpoint=checkpoint,
            interrupted=interrupt.reason)
        if on_exhausted == "error":
            interrupt.statistics = partial.statistics
            interrupt.partial_result = partial
            interrupt.checkpoint = checkpoint
        return partial

    prev_governor = context.governor if context is not None else None
    if context is not None:
        context.governor = governor
    try:
        # Condition E1/E5: all output variables range over finite domains.
        if all(tableau.has_finite_domain(v)
               for tableau in q_tableaux
               for v in tableau.summary_variables()):
            outcome = make_complete(
                query, Instance.empty(schema), master, constraints,
                max_rounds=max_completion_rounds, governor=governor,
                on_exhausted="error", context=context,
                use_engine=context is not None)
            if outcome.complete:
                return RCQPResult(
                    status=RCQPStatus.NONEMPTY,
                    witness=outcome.database,
                    explanation=(
                        "all output variables have finite domains "
                        "(condition E1/E5); witness built by certificate "
                        "completion"))
            raise ReproError(
                "internal error: E1/E5 completion did not converge — raise "
                "max_completion_rounds or report this as a bug")

        # Condition E2/E6: search for a bounding set of partial valuations.
        if phase == 0:
            with obs_span(obs, "enumerate_units"):
                units = _enumerate_units(
                    cc_tableaux, adom, max_rows_per_unit,
                    governor=governor, skip=start_n, progress=frontier)
            new_units = max(0, frontier["units"] - start_n)
            frontier.update(phase=1, sets=0)
            to_skip = 0
        else:
            # Units were fully enumerated (and charged) before the
            # interruption; rebuild them without re-charging.
            with obs_span(obs, "enumerate_units"):
                units = _enumerate_units(cc_tableaux, adom,
                                         max_rows_per_unit)
            to_skip = start_n

        ground_rows: list[Fact] = [
            (row.relation, row.instantiate({}))
            for tableau in q_tableaux for row in tableau.ground_rows()]
        max_size = min(max_valuation_set_size, len(units))
        total_sets = 0
        with obs_span(obs, "enumerate_candidate_sets"):
            for size in range(0, max_size + 1):
                for combo in itertools.combinations(units, size):
                    total_sets += 1
                    if total_sets <= to_skip:
                        continue
                    if governor is not None:
                        governor.tick("candidate_sets")
                    examined += 1
                    dv_facts = frozenset().union(
                        *(u.facts for u in combo)) \
                        if combo else frozenset()
                    bound_values = frozenset().union(
                        *(u.summary_values for u in combo)) \
                        if combo else frozenset()
                    if not _candidate_is_bounding(
                            schema, master, constraints, q_tableaux, adom,
                            dv_facts, bound_values, governor=governor,
                            context=context):
                        frontier["sets"] = total_sets
                        continue
                    witness = _facts_instance(
                        schema, list(dv_facts) + ground_rows)
                    if not satisfies_all(witness, master, constraints,
                                         context=context):
                        frontier["sets"] = total_sets
                        continue
                    outcome = make_complete(
                        query, witness, master, constraints,
                        max_rounds=max_completion_rounds,
                        governor=governor, on_exhausted="error",
                        context=context, use_engine=context is not None)
                    if not outcome.complete:
                        frontier["sets"] = total_sets
                        continue
                    if verify_witness:
                        with obs_span(obs, "verify_witness"):
                            verdict = decide_rcdp(
                                query, outcome.database, master,
                                constraints, governor=governor,
                                context=context,
                                use_engine=context is not None)
                        if verdict.status is not RCDPStatus.COMPLETE:
                            frontier["sets"] = total_sets
                            continue  # conservative: keep searching
                    return RCQPResult(
                        status=RCQPStatus.NONEMPTY,
                        witness=outcome.database,
                        explanation=(
                            f"bounding valuation set of size {size} "
                            f"found (condition E2/E6); witness verified "
                            f"complete"),
                        statistics=_stats())
    except ExecutionInterrupted as interrupt:
        partial = _interrupted_result(interrupt)
        if on_exhausted == "error":
            raise
        return partial
    finally:
        if context is not None:
            context.governor = prev_governor

    exhausted = max_valuation_set_size >= len(units)
    status = RCQPStatus.EMPTY if exhausted else RCQPStatus.EMPTY_UP_TO_BOUND
    total_examined = base_stats.candidate_sets_examined + examined
    return RCQPResult(
        status=status,
        explanation=(
            f"no bounding valuation set among {total_examined} candidate "
            f"set(s) over {len(units)} unit(s)"
            + ("" if exhausted else
               f" (search capped at size {max_valuation_set_size})")),
        statistics=_stats(),
        bound=None if exhausted else max_valuation_set_size)
