"""Result types of the RCDP / RCQP decision procedures.

Every verdict is explicit about its strength:

* :class:`RCDPStatus.COMPLETE` / :class:`RCQPStatus.NONEMPTY` etc. are exact
  answers from the characterization-based deciders;
* the ``*_UP_TO_BOUND`` statuses come from the bounded semi-decision
  procedures (the only ones available for FO/FP, where the problems are
  undecidable) and make no claim beyond the explored bound.

INCOMPLETE verdicts carry a *certificate*: a concrete set of facts whose
addition is consistent with the containment constraints yet changes the
query answer.  This doubles as the paper's Section 2.3 guidance for what
data to collect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.relational.instance import Instance

__all__ = [
    "RCDPStatus", "RCQPStatus", "IncompletenessCertificate", "RCDPResult",
    "RCQPResult", "SearchStatistics",
]

Fact = tuple[str, tuple]


class RCDPStatus(enum.Enum):
    """Verdicts for the relatively complete database problem."""

    COMPLETE = "complete"
    INCOMPLETE = "incomplete"
    #: Bounded procedure found no counterexample within the bound.
    COMPLETE_UP_TO_BOUND = "complete-up-to-bound"


class RCQPStatus(enum.Enum):
    """Verdicts for the relatively complete query problem."""

    NONEMPTY = "nonempty"
    EMPTY = "empty"
    #: Bounded search found no witness within the bound.
    EMPTY_UP_TO_BOUND = "empty-up-to-bound"


@dataclass(frozen=True)
class IncompletenessCertificate:
    """Evidence that ``D`` is not complete for ``Q`` relative to ``(Dm, V)``.

    Attributes
    ----------
    extension_facts:
        Facts ``Δ`` such that ``(D ∪ Δ, Dm) ⊨ V`` yet
        ``Q(D ∪ Δ) ≠ Q(D)``.
    new_answer:
        A tuple in ``Q(D ∪ Δ) \\ Q(D)``.
    disjunct_name:
        Which CQ disjunct of ``Q`` produced the witness.
    """

    extension_facts: tuple[Fact, ...]
    new_answer: tuple
    disjunct_name: str = ""

    def apply_to(self, database: Instance) -> Instance:
        """Return ``D ∪ Δ``."""
        return database.with_facts(self.extension_facts)

    def __repr__(self) -> str:
        facts = ", ".join(f"{name}{row!r}"
                          for name, row in self.extension_facts)
        return (f"Certificate[add {{{facts}}} ⇒ new answer "
                f"{self.new_answer!r}]")


@dataclass(frozen=True)
class SearchStatistics:
    """Counters the deciders expose for the benchmark harness."""

    valuations_examined: int = 0
    constraint_checks: int = 0
    candidate_sets_examined: int = 0


@dataclass(frozen=True)
class RCDPResult:
    """Outcome of an RCDP decision."""

    status: RCDPStatus
    certificate: IncompletenessCertificate | None = None
    explanation: str = ""
    statistics: SearchStatistics = field(default_factory=SearchStatistics)
    #: For bounded procedures: the explored extension-size bound.
    bound: int | None = None

    @property
    def is_complete(self) -> bool:
        """True only for an exact COMPLETE verdict."""
        return self.status is RCDPStatus.COMPLETE

    @property
    def is_incomplete(self) -> bool:
        return self.status is RCDPStatus.INCOMPLETE

    def __bool__(self) -> bool:
        # Deliberately undefined truthiness: force callers to test the
        # status explicitly rather than accidentally treating
        # COMPLETE_UP_TO_BOUND as COMPLETE.
        raise TypeError(
            "RCDPResult has no truth value; inspect .status instead")


@dataclass(frozen=True)
class RCQPResult:
    """Outcome of an RCQP decision."""

    status: RCQPStatus
    witness: Instance | None = None
    explanation: str = ""
    statistics: SearchStatistics = field(default_factory=SearchStatistics)
    bound: int | None = None

    @property
    def is_nonempty(self) -> bool:
        return self.status is RCQPStatus.NONEMPTY

    @property
    def is_empty(self) -> bool:
        """True only for an exact EMPTY verdict."""
        return self.status is RCQPStatus.EMPTY

    def __bool__(self) -> bool:
        raise TypeError(
            "RCQPResult has no truth value; inspect .status instead")
