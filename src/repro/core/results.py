"""Result types of the RCDP / RCQP decision procedures.

Every verdict is explicit about its strength:

* :class:`RCDPStatus.COMPLETE` / :class:`RCQPStatus.NONEMPTY` etc. are exact
  answers from the characterization-based deciders;
* the ``*_UP_TO_BOUND`` statuses come from the bounded semi-decision
  procedures (the only ones available for FO/FP, where the problems are
  undecidable) and make no claim beyond the explored bound;
* the ``EXHAUSTED`` statuses come from the execution governor
  (:mod:`repro.runtime`): the search was interrupted by a budget,
  deadline, cancellation, or injected fault before reaching a verdict.
  Such results carry best-so-far statistics and a resumable
  :class:`~repro.runtime.checkpoint.SearchCheckpoint` — the paid-for
  Πᵖ₂/NEXPTIME work is never thrown away.

INCOMPLETE verdicts carry a *certificate*: a concrete set of facts whose
addition is consistent with the containment constraints yet changes the
query answer.  This doubles as the paper's Section 2.3 guidance for what
data to collect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from repro.relational.instance import Instance

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.runtime.checkpoint import SearchCheckpoint

__all__ = [
    "RCDPStatus", "RCQPStatus", "IncompletenessCertificate", "RCDPResult",
    "RCQPResult", "SearchStatistics", "MissingAnswersReport",
]

Fact = tuple[str, tuple]


class RCDPStatus(enum.Enum):
    """Verdicts for the relatively complete database problem."""

    COMPLETE = "complete"
    INCOMPLETE = "incomplete"
    #: Bounded procedure found no counterexample within the bound.
    COMPLETE_UP_TO_BOUND = "complete-up-to-bound"
    #: The governed search was interrupted before reaching a verdict;
    #: the result carries statistics and a resumable checkpoint.
    EXHAUSTED = "exhausted"


class RCQPStatus(enum.Enum):
    """Verdicts for the relatively complete query problem."""

    NONEMPTY = "nonempty"
    EMPTY = "empty"
    #: Bounded search found no witness within the bound.
    EMPTY_UP_TO_BOUND = "empty-up-to-bound"
    #: The governed search was interrupted before reaching a verdict.
    EXHAUSTED = "exhausted"


@dataclass(frozen=True)
class IncompletenessCertificate:
    """Evidence that ``D`` is not complete for ``Q`` relative to ``(Dm, V)``.

    Attributes
    ----------
    extension_facts:
        Facts ``Δ`` such that ``(D ∪ Δ, Dm) ⊨ V`` yet
        ``Q(D ∪ Δ) ≠ Q(D)``.
    new_answer:
        A tuple in ``Q(D ∪ Δ) \\ Q(D)``.
    disjunct_name:
        Which CQ disjunct of ``Q`` produced the witness.
    """

    extension_facts: tuple[Fact, ...]
    new_answer: tuple
    disjunct_name: str = ""

    def apply_to(self, database: Instance) -> Instance:
        """Return ``D ∪ Δ``."""
        return database.with_facts(self.extension_facts)

    def __repr__(self) -> str:
        facts = ", ".join(f"{name}{row!r}"
                          for name, row in self.extension_facts)
        return (f"Certificate[add {{{facts}}} ⇒ new answer "
                f"{self.new_answer!r}]")


@dataclass(frozen=True)
class SearchStatistics:
    """Counters the deciders expose for the benchmark harness.

    All counters default to 0, so procedures only populate the ones they
    track.  :meth:`merged` sums two snapshots — resumed searches use it
    to report cumulative totals across interruptions.
    """

    valuations_examined: int = 0
    constraint_checks: int = 0
    candidate_sets_examined: int = 0
    #: Partial valuations enumerated by the RCQP E2/E6 unit phase.
    units_examined: int = 0
    #: Search nodes explored by the auxiliary solvers (DPLL branches,
    #: tiling placements, 2-head DFA words, QBF expansions).
    nodes_examined: int = 0
    #: Evaluation-engine counters (:mod:`repro.engine`): query plans
    #: compiled, hash indexes built, answer/projection cache hits, and
    #: how many ``Q(D ∪ Δ)`` evaluations ran on the semi-naive delta
    #: path versus a full (re-)evaluation.
    plans_compiled: int = 0
    index_builds: int = 0
    engine_cache_hits: int = 0
    delta_evaluations: int = 0
    full_evaluations: int = 0
    #: Warning-severity diagnostics the static analyzer
    #: (:mod:`repro.analysis`) reported during the decider's fast-fail
    #: pass (error diagnostics raise instead of being counted).
    analysis_warnings: int = 0

    def merged(self, other: "SearchStatistics") -> "SearchStatistics":
        """Field-wise sum of two statistics snapshots."""
        return SearchStatistics(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)})


@dataclass(frozen=True)
class RCDPResult:
    """Outcome of an RCDP decision."""

    status: RCDPStatus
    certificate: IncompletenessCertificate | None = None
    explanation: str = ""
    statistics: SearchStatistics = field(default_factory=SearchStatistics)
    #: For bounded procedures: the explored extension-size bound.
    bound: int | None = None
    #: For EXHAUSTED results: the resumable search frontier.
    checkpoint: "SearchCheckpoint | None" = None
    #: For EXHAUSTED results: what stopped the search
    #: (``"budget"``, ``"deadline"``, or ``"cancelled"``).
    interrupted: str | None = None

    @property
    def is_complete(self) -> bool:
        """True only for an exact COMPLETE verdict."""
        return self.status is RCDPStatus.COMPLETE

    @property
    def is_incomplete(self) -> bool:
        return self.status is RCDPStatus.INCOMPLETE

    @property
    def is_exhausted(self) -> bool:
        """True when the governed search was interrupted mid-decision."""
        return self.status is RCDPStatus.EXHAUSTED

    def __bool__(self) -> bool:
        # Deliberately undefined truthiness: force callers to test the
        # status explicitly rather than accidentally treating
        # COMPLETE_UP_TO_BOUND as COMPLETE.
        raise TypeError(
            "RCDPResult has no truth value; inspect .status instead")


@dataclass(frozen=True)
class RCQPResult:
    """Outcome of an RCQP decision."""

    status: RCQPStatus
    witness: Instance | None = None
    explanation: str = ""
    statistics: SearchStatistics = field(default_factory=SearchStatistics)
    bound: int | None = None
    #: For EXHAUSTED results: the resumable search frontier.
    checkpoint: "SearchCheckpoint | None" = None
    #: For EXHAUSTED results: what stopped the search.
    interrupted: str | None = None

    @property
    def is_nonempty(self) -> bool:
        return self.status is RCQPStatus.NONEMPTY

    @property
    def is_empty(self) -> bool:
        """True only for an exact EMPTY verdict."""
        return self.status is RCQPStatus.EMPTY

    @property
    def is_exhausted(self) -> bool:
        """True when the governed search was interrupted mid-decision."""
        return self.status is RCQPStatus.EXHAUSTED

    def __bool__(self) -> bool:
        raise TypeError(
            "RCQPResult has no truth value; inspect .status instead")


@dataclass(frozen=True)
class MissingAnswersReport:
    """Outcome of a governed missing-answer enumeration.

    ``answers`` is the full missing-answer set when ``exhaustive`` is
    True; otherwise (a ``limit`` was hit or the governor interrupted the
    search) it is a *lower bound* — every member is genuinely attainable,
    but more may exist.  Interrupted enumerations carry a resumable
    checkpoint whose payload preserves the answers found so far.
    """

    answers: frozenset[tuple]
    exhaustive: bool
    statistics: SearchStatistics = field(default_factory=SearchStatistics)
    checkpoint: "SearchCheckpoint | None" = None
    interrupted: str | None = None

    def __repr__(self) -> str:
        kind = "all" if self.exhaustive else "≥"
        return (f"MissingAnswers[{kind} {len(self.answers)} answer(s)"
                f"{', interrupted: ' + self.interrupted if self.interrupted else ''}]")
