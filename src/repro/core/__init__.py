"""Core deciders for relative information completeness (Sections 3 and 4)."""

from repro.core.analysis import (BoundednessReport, VariableReport,
                                 VariableStatus, analyze_boundedness)
from repro.core.bounded import (brute_force_rcdp, brute_force_rcqp,
                                candidate_fact_pool, default_value_pool)
from repro.core.rcdp import (assert_decidable_configuration, decide_rcdp,
                             ensure_partially_closed,
                             enumerate_missing_answers,
                             missing_answers_report, split_ind_constraints)
from repro.core.rcqp import decide_rcqp, decide_rcqp_with_inds
from repro.core.results import (IncompletenessCertificate,
                                MissingAnswersReport, RCDPResult,
                                RCDPStatus, RCQPResult, RCQPStatus,
                                SearchStatistics)
from repro.core.valuations import ActiveDomain, iter_valid_valuations
from repro.core.witness import (CompletionOutcome, make_complete,
                                minimize_witness)

__all__ = [
    "ActiveDomain",
    "BoundednessReport",
    "CompletionOutcome",
    "IncompletenessCertificate",
    "MissingAnswersReport",
    "RCDPResult",
    "RCDPStatus",
    "RCQPResult",
    "RCQPStatus",
    "SearchStatistics",
    "VariableReport",
    "VariableStatus",
    "analyze_boundedness",
    "assert_decidable_configuration",
    "brute_force_rcdp",
    "brute_force_rcqp",
    "candidate_fact_pool",
    "decide_rcdp",
    "decide_rcqp",
    "decide_rcqp_with_inds",
    "default_value_pool",
    "ensure_partially_closed",
    "enumerate_missing_answers",
    "iter_valid_valuations",
    "make_complete",
    "minimize_witness",
    "missing_answers_report",
    "split_ind_constraints",
]
