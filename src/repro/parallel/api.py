"""Parent-side parallel front-ends for the exact search procedures.

Each ``*_parallel`` function is the fan-out twin of one serial decider:
it performs the same validation and setup in the parent process, shards
the deterministic enumeration across a worker pool
(:func:`~repro.parallel.pool.run_shards`), and reconciles the outcomes
into the same result type the serial decider returns.

Determinism contract (see ``docs/PARALLEL.md``):

* **Verdicts** are identical to the serial decider's for every worker
  count, including which witness is reported: every candidate has a
  unique rank in the serial enumeration order, workers report the rank
  of what they find, and the parent keeps the minimum — the serial-first
  find.
* **Statistics**: ``valuations_examined`` / ``constraint_checks`` /
  ``candidate_sets_examined`` are exactly the serial counts whenever the
  enumeration runs to completion (COMPLETE / EMPTY / exhaustive
  verdicts).  On early exits the totals may differ (workers examine
  candidates the serial search never reached before the beacon stops
  them), and per-process engine counters (plans compiled, indexes
  built) scale with the worker count.
* **Governors**: each worker receives a slice of the remaining budget,
  the shared absolute deadline, and a cancellation adapter; consumed
  ticks are absorbed back into the parent governor, and per-shard resume
  cursors make interrupted parallel runs resumable — with the same
  worker count, since shard ownership is a function of it.
* **Fault tolerance**: worker death does not change any of the above.
  The pool's :class:`~repro.parallel.supervise.ShardSupervisor` respawns
  crashed or silent shards from their last progress snapshot (the
  committed prefix's statistics, ticks, and partial data are folded into
  the replacement's outcome, so merged totals stay exact), and shards
  that exhaust their :class:`~repro.runtime.RetryPolicy` budget are
  quarantined to an in-process serial re-run of the identical slice.
  Retried shards draw from the same governor ledger — budget shares are
  reduced by committed ticks and the deadline stays absolute — so
  exhaustion under faults still yields a resumable checkpoint.

These functions are not called directly in normal use: the serial
deciders in :mod:`repro.core` grow a ``workers=`` parameter and delegate
here when it resolves to more than one.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.analysis.diagnostics import Report
from repro.analysis.driver import validate_for_decision
from repro.constraints.containment import ContainmentConstraint
from repro.core.rcdp import (assert_decidable_configuration,
                             ensure_partially_closed, resolve_analysis,
                             resolve_context)
from repro.core.results import (IncompletenessCertificate,
                                MissingAnswersReport, RCDPResult,
                                RCDPStatus, RCQPResult, RCQPStatus,
                                SearchStatistics)
from repro.engine import EvaluationContext
from repro.errors import (ConstraintError, ExecutionInterrupted,
                          ReproError, UndecidableConfigurationError)
from repro.obs import obs_of
from repro.parallel.partition import (parallel_checkpoint_state,
                                      split_governor,
                                      unpack_parallel_state)
from repro.parallel.pool import merged_ticks, run_shards
from repro.parallel.worker import ShardOutcome, ShardSpec, ShardTask
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema
from repro.runtime import (ExecutionGovernor, SearchCheckpoint,
                           resolve_governor, validate_exhaustion_mode)

__all__ = ["decide_rcdp_parallel", "missing_answers_parallel",
           "brute_force_rcdp_parallel", "brute_force_rcqp_parallel",
           "decide_rcqp_parallel", "decide_rcqp_with_inds_parallel"]

Fact = tuple[str, tuple]


# ---------------------------------------------------------------------------
# Shared reconciliation helpers
# ---------------------------------------------------------------------------


def _make_tasks(kind: str, workers: int,
                specs: Sequence[Any], consumed: Sequence[int],
                done: Sequence[bool], use_engine: bool,
                payload: dict[str, Any], *,
                backend: str = "python") -> list[ShardTask]:
    return [ShardTask(kind=kind,
                      shard=ShardSpec(index=index, count=workers,
                                      skip=consumed[index],
                                      done=done[index]),
                      governor=specs[index], use_engine=use_engine,
                      payload=payload, backend=backend)
            for index in range(workers)]


def _task_backend(context: EvaluationContext | None) -> str:
    """The backend worker contexts should run on: the parent context's
    (so a ``--backend`` choice reaches every shard) or the default."""
    return context.backend if context is not None else "python"


def _reconcile(outcomes: Sequence[ShardOutcome],
               governor: ExecutionGovernor | None) -> None:
    if governor is not None:
        governor.absorb(merged_ticks(outcomes))
        observation = obs_of(governor)
        if observation is not None:
            observation.absorb_outcomes(outcomes)


def _sum_statistics(outcomes: Sequence[ShardOutcome]) -> SearchStatistics:
    total = SearchStatistics()
    for outcome in outcomes:
        total = total.merged(outcome.statistics)
    return total


def _best_witness(outcomes: Sequence[ShardOutcome]) -> ShardOutcome | None:
    witnesses = [o for o in outcomes if o.kind == "witness"]
    if not witnesses:
        if any(o.kind == "superseded" for o in outcomes):
            raise ReproError(
                "internal error: a shard observed a witness beacon but no "
                "shard reported a witness — please report this as a bug")
        return None
    return min(witnesses, key=lambda o: o.rank)


def _first_exhausted(outcomes: Sequence[ShardOutcome],
                     ) -> ShardOutcome | None:
    for outcome in sorted(outcomes, key=lambda o: o.index):
        if outcome.kind == "exhausted":
            return outcome
    return None


def _raise_interrupted(message: str, reason: str,
                       statistics: SearchStatistics, partial: Any,
                       checkpoint: SearchCheckpoint) -> None:
    interrupt = ExecutionInterrupted(message, reason=reason)
    interrupt.statistics = statistics
    interrupt.partial_result = partial
    interrupt.checkpoint = checkpoint
    raise interrupt


# ---------------------------------------------------------------------------
# RCDP
# ---------------------------------------------------------------------------


def decide_rcdp_parallel(query: Any, database: Instance, master: Instance,
                         constraints: Sequence[ContainmentConstraint],
                         *, workers: int,
                         check_partially_closed: bool = True,
                         budget: int | None = None,
                         use_ind_pruning: bool = True,
                         governor: ExecutionGovernor | None = None,
                         on_exhausted: str = "error",
                         resume_from: SearchCheckpoint | None = None,
                         use_engine: bool = True,
                         context: EvaluationContext | None = None,
                         backend: str | None = None,
                         analyze: bool = True,
                         analysis: Report | None = None) -> RCDPResult:
    """``decide_rcdp`` with the valuation search sharded over *workers*."""
    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    assert_decidable_configuration(query, constraints)
    analysis = resolve_analysis(query, constraints, database, master,
                                analysis, analyze)
    fresh_warnings = (len(analysis.warnings)
                      if analysis is not None and resume_from is None
                      else 0)
    query.validate(database.schema)
    if check_partially_closed:
        ensure_partially_closed(database, master, constraints, context)

    def _parent_engine() -> SearchStatistics:
        if context is None:
            return SearchStatistics()
        return context.statistics.since(engine_base)

    if analysis is not None and analysis.facts.query_provably_empty:
        return RCDPResult(
            status=RCDPStatus.COMPLETE,
            explanation=(
                "static analysis proved the query empty (contradictory "
                "=/≠ atoms in every disjunct): Q(D') = ∅ for every D', "
                "so no extension can add an answer and D is trivially "
                "relatively complete"),
            statistics=SearchStatistics(
                analysis_warnings=fresh_warnings).merged(_parent_engine()))

    consumed = [0] * workers
    done = [False] * workers
    base_stats = SearchStatistics()
    if resume_from is not None:
        consumed, done = unpack_parallel_state(resume_from,
                                               "rcdp-parallel", workers)
        base_stats = resume_from.base_statistics()

    specs = split_governor(governor, workers, consumed=consumed, done=done)
    tasks = _make_tasks(
        "rcdp", workers, specs, consumed, done, use_engine,
        dict(query=query, database=database, master=master,
             constraints=tuple(constraints),
             use_ind_pruning=use_ind_pruning),
        backend=_task_backend(context))
    outcomes = run_shards(tasks, governor=governor)
    _reconcile(outcomes, governor)

    stats = (base_stats
             .merged(SearchStatistics(analysis_warnings=fresh_warnings))
             .merged(_parent_engine())
             .merged(_sum_statistics(outcomes)))

    best = _best_witness(outcomes)
    if best is not None:
        delta, summary, disjunct_name = best.data
        return RCDPResult(
            status=RCDPStatus.INCOMPLETE,
            certificate=IncompletenessCertificate(
                extension_facts=tuple(delta), new_answer=summary,
                disjunct_name=disjunct_name),
            explanation=(
                f"adding {len(delta)} fact(s) keeps V satisfied but "
                f"produces the new answer {summary!r}"),
            statistics=stats)

    exhausted = _first_exhausted(outcomes)
    if exhausted is not None:
        checkpoint = SearchCheckpoint(
            procedure="rcdp-parallel", cursor=(workers,),
            statistics=stats,
            payload=parallel_checkpoint_state(outcomes))
        partial = RCDPResult(
            status=RCDPStatus.EXHAUSTED,
            explanation=(
                f"parallel search interrupted ({exhausted.reason}) after "
                f"{stats.valuations_examined} valuation(s) across "
                f"{workers} worker(s); resume from the checkpoint with "
                f"the same worker count to continue"),
            statistics=stats, checkpoint=checkpoint,
            interrupted=exhausted.reason)
        if on_exhausted == "error":
            _raise_interrupted(partial.explanation, exhausted.reason,
                               stats, partial, checkpoint)
        return partial

    return RCDPResult(
        status=RCDPStatus.COMPLETE,
        explanation=(
            "no valid valuation over the active domain extends D "
            "consistently with V while changing Q(D) "
            "(conditions C1/C2 hold)"),
        statistics=stats)


# ---------------------------------------------------------------------------
# Missing answers
# ---------------------------------------------------------------------------


def missing_answers_parallel(query: Any, database: Instance,
                             master: Instance,
                             constraints: Sequence[ContainmentConstraint],
                             *, workers: int,
                             limit: int | None = None,
                             check_partially_closed: bool = True,
                             budget: int | None = None,
                             governor: ExecutionGovernor | None = None,
                             on_exhausted: str = "partial",
                             resume_from: SearchCheckpoint | None = None,
                             use_engine: bool = True,
                             context: EvaluationContext | None = None,
                             backend: str | None = None,
                             analyze: bool = True,
                             analysis: Report | None = None,
                             ) -> MissingAnswersReport:
    """``missing_answers_report`` sharded over *workers*.

    Workers report ``(rank, summary)`` pairs for the first occurrences
    in their shard; the parent merges per-summary rank minima, orders by
    rank, and truncates at *limit* — which reproduces exactly the set
    the serial scan returns when its limit trips (each worker's first
    ``limit`` local finds provably cover the global rank-ordered
    top-``limit``).
    """
    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    assert_decidable_configuration(query, constraints)
    analysis = resolve_analysis(query, constraints, database, master,
                                analysis, analyze)
    fresh_warnings = (len(analysis.warnings)
                      if analysis is not None and resume_from is None
                      else 0)
    query.validate(database.schema)
    if check_partially_closed:
        ensure_partially_closed(database, master, constraints, context)

    def _parent_engine() -> SearchStatistics:
        if context is None:
            return SearchStatistics()
        return context.statistics.since(engine_base)

    if analysis is not None and analysis.facts.query_provably_empty:
        return MissingAnswersReport(
            answers=frozenset(), exhaustive=True,
            statistics=SearchStatistics(
                analysis_warnings=fresh_warnings).merged(_parent_engine()))

    consumed = [0] * workers
    done = [False] * workers
    base_stats = SearchStatistics()
    carried_pairs: list[tuple[tuple[int, ...], tuple]] = []
    if resume_from is not None:
        consumed, done = unpack_parallel_state(resume_from,
                                               "missing-parallel", workers)
        base_stats = resume_from.base_statistics()
        carried_pairs = [tuple(pair) for pair in resume_from.payload[2]]

    specs = split_governor(governor, workers, consumed=consumed, done=done)
    tasks = _make_tasks(
        "missing", workers, specs, consumed, done, use_engine,
        dict(query=query, database=database, master=master,
             constraints=tuple(constraints), limit=limit),
        backend=_task_backend(context))
    outcomes = run_shards(tasks, governor=governor, use_beacon=False)
    _reconcile(outcomes, governor)

    stats = (base_stats
             .merged(SearchStatistics(analysis_warnings=fresh_warnings))
             .merged(_parent_engine())
             .merged(_sum_statistics(outcomes)))

    best: dict[tuple, tuple[int, ...]] = {}
    for rank, summary in carried_pairs:
        rank = tuple(rank)
        if summary not in best or rank < best[summary]:
            best[summary] = rank
    for outcome in outcomes:
        for rank, summary in outcome.data or ():
            rank = tuple(rank)
            if summary not in best or rank < best[summary]:
                best[summary] = rank
    ordered = sorted(best.items(), key=lambda item: item[1])

    exhausted = _first_exhausted(outcomes)
    if exhausted is not None:
        checkpoint = SearchCheckpoint(
            procedure="missing-parallel", cursor=(workers,),
            statistics=stats,
            payload=parallel_checkpoint_state(outcomes) + (
                tuple((rank, summary) for summary, rank in ordered),))
        report = MissingAnswersReport(
            answers=frozenset(summary for summary, _ in ordered),
            exhaustive=False, statistics=stats, checkpoint=checkpoint,
            interrupted=exhausted.reason)
        if on_exhausted == "error":
            _raise_interrupted(
                f"parallel missing-answers scan interrupted "
                f"({exhausted.reason}); resume from the checkpoint with "
                f"the same worker count to continue",
                exhausted.reason, stats, report, checkpoint)
        return report

    if limit is not None and len(ordered) >= max(limit, 1):
        # The serial scan returns as soon as the limit-th distinct
        # answer appears, so it reports the rank-ordered first finds
        # (one extra when limit == 0: the trigger answer itself).
        cap = max(limit, 1)
        return MissingAnswersReport(
            answers=frozenset(summary for summary, _ in ordered[:cap]),
            exhaustive=False, statistics=stats)
    return MissingAnswersReport(
        answers=frozenset(summary for summary, _ in ordered),
        exhaustive=True, statistics=stats)


# ---------------------------------------------------------------------------
# Bounded brute-force procedures
# ---------------------------------------------------------------------------


def brute_force_rcdp_parallel(query: Any, database: Instance,
                              master: Instance,
                              constraints: Sequence[ContainmentConstraint],
                              *, workers: int,
                              max_extra_facts: int,
                              values: Sequence[Any] | None = None,
                              relations: Any = None,
                              check_partially_closed: bool = True,
                              budget: int | None = None,
                              governor: ExecutionGovernor | None = None,
                              on_exhausted: str = "error",
                              resume_from: SearchCheckpoint | None = None,
                              use_engine: bool = True,
                              context: EvaluationContext | None = None,
                              backend: str | None = None,
                              ) -> RCDPResult:
    """``brute_force_rcdp`` with the extension-set enumeration sharded."""
    from repro.core.bounded import candidate_fact_pool, resolve_value_pool

    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    if check_partially_closed:
        ensure_partially_closed(database, master, constraints, context)
    values = resolve_value_pool(query, constraints, database.schema,
                                (database, master), values, context)
    existing = set(database.facts())
    pool_size = sum(
        1 for fact in candidate_fact_pool(database.schema, values,
                                          relations=relations)
        if fact not in existing)
    # Relations may be a single-pass iterable; workers need a replayable
    # value.
    relations = tuple(relations) if relations is not None else None

    consumed = [0] * workers
    done = [False] * workers
    base_stats = SearchStatistics()
    if resume_from is not None:
        consumed, done = unpack_parallel_state(
            resume_from, "brute-rcdp-parallel", workers)
        base_stats = resume_from.base_statistics()

    specs = split_governor(governor, workers, consumed=consumed, done=done)
    tasks = _make_tasks(
        "brute-rcdp", workers, specs, consumed, done, use_engine,
        dict(query=query, database=database, master=master,
             constraints=tuple(constraints),
             max_extra_facts=max_extra_facts, values=tuple(values),
             relations=relations),
        backend=_task_backend(context))
    outcomes = run_shards(tasks, governor=governor)
    _reconcile(outcomes, governor)

    stats = base_stats.merged(_sum_statistics(outcomes))
    if context is not None:
        stats = stats.merged(context.statistics.since(engine_base))

    best = _best_witness(outcomes)
    if best is not None:
        combo, answer, size = best.data
        return RCDPResult(
            status=RCDPStatus.INCOMPLETE,
            certificate=IncompletenessCertificate(
                extension_facts=tuple(combo), new_answer=answer),
            explanation=(
                f"brute force found a {size}-fact consistent extension "
                f"changing the answer"),
            statistics=stats, bound=max_extra_facts)

    exhausted = _first_exhausted(outcomes)
    if exhausted is not None:
        checkpoint = SearchCheckpoint(
            procedure="brute-rcdp-parallel", cursor=(workers,),
            statistics=stats,
            payload=parallel_checkpoint_state(outcomes))
        partial = RCDPResult(
            status=RCDPStatus.EXHAUSTED,
            explanation=(
                f"parallel brute-force search interrupted "
                f"({exhausted.reason}); resume from the checkpoint with "
                f"the same worker count to continue"),
            statistics=stats, checkpoint=checkpoint,
            interrupted=exhausted.reason, bound=max_extra_facts)
        if on_exhausted == "error":
            _raise_interrupted(partial.explanation, exhausted.reason,
                               stats, partial, checkpoint)
        return partial

    return RCDPResult(
        status=RCDPStatus.COMPLETE_UP_TO_BOUND,
        explanation=(
            f"no consistent answer-changing extension of ≤ "
            f"{max_extra_facts} fact(s) over a pool of {pool_size} "
            f"candidates"),
        statistics=stats, bound=max_extra_facts)


def brute_force_rcqp_parallel(query: Any, master: Instance,
                              constraints: Sequence[ContainmentConstraint],
                              schema: DatabaseSchema,
                              *, workers: int,
                              max_database_size: int,
                              values: Sequence[Any] | None = None,
                              completeness_bound: int | None = None,
                              budget: int | None = None,
                              governor: ExecutionGovernor | None = None,
                              on_exhausted: str = "error",
                              resume_from: SearchCheckpoint | None = None,
                              use_engine: bool = True,
                              context: EvaluationContext | None = None,
                              backend: str | None = None,
                              ) -> RCQPResult:
    """``brute_force_rcqp`` with the candidate-database search sharded."""
    from repro.core.bounded import candidate_fact_pool, resolve_value_pool

    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    values = resolve_value_pool(query, constraints, schema, (master,),
                                values, context)
    pool_size = len(candidate_fact_pool(schema, values))

    decidable = True
    try:
        assert_decidable_configuration(query, constraints)
    except UndecidableConfigurationError as exc:
        decidable = False
        if completeness_bound is None:
            raise UndecidableConfigurationError(
                "brute_force_rcqp on an undecidable configuration needs "
                "an explicit completeness_bound") from exc

    consumed = [0] * workers
    done = [False] * workers
    base_stats = SearchStatistics()
    if resume_from is not None:
        consumed, done = unpack_parallel_state(
            resume_from, "brute-rcqp-parallel", workers)
        base_stats = resume_from.base_statistics()

    specs = split_governor(governor, workers, consumed=consumed, done=done)
    tasks = _make_tasks(
        "brute-rcqp", workers, specs, consumed, done, use_engine,
        dict(query=query, master=master, constraints=tuple(constraints),
             schema=schema, max_database_size=max_database_size,
             values=tuple(values), completeness_bound=completeness_bound,
             decidable=decidable),
        backend=_task_backend(context))
    outcomes = run_shards(tasks, governor=governor)
    _reconcile(outcomes, governor)

    stats = base_stats.merged(_sum_statistics(outcomes))
    if context is not None:
        stats = stats.merged(context.statistics.since(engine_base))

    best = _best_witness(outcomes)
    if best is not None:
        candidate, _size = best.data
        note = ("witness verified by the exact RCDP decider"
                if decidable else
                f"witness only checked up to extensions of "
                f"{completeness_bound} fact(s) — configuration is "
                f"undecidable")
        return RCQPResult(
            status=RCQPStatus.NONEMPTY, witness=candidate,
            explanation=note, statistics=stats, bound=max_database_size)

    exhausted = _first_exhausted(outcomes)
    if exhausted is not None:
        checkpoint = SearchCheckpoint(
            procedure="brute-rcqp-parallel", cursor=(workers,),
            statistics=stats,
            payload=parallel_checkpoint_state(outcomes))
        partial = RCQPResult(
            status=RCQPStatus.EXHAUSTED,
            explanation=(
                f"parallel brute-force search interrupted "
                f"({exhausted.reason}); resume from the checkpoint with "
                f"the same worker count to continue"),
            statistics=stats, checkpoint=checkpoint,
            interrupted=exhausted.reason, bound=max_database_size)
        if on_exhausted == "error":
            _raise_interrupted(partial.explanation, exhausted.reason,
                               stats, partial, checkpoint)
        return partial

    return RCQPResult(
        status=RCQPStatus.EMPTY_UP_TO_BOUND,
        explanation=(
            f"no relatively complete database of ≤ {max_database_size} "
            f"fact(s) over a pool of {pool_size} candidate facts"),
        statistics=stats, bound=max_database_size)


# ---------------------------------------------------------------------------
# RCQP (general characterization)
# ---------------------------------------------------------------------------


def decide_rcqp_parallel(query: Any, master: Instance,
                         constraints: Sequence[ContainmentConstraint],
                         schema: DatabaseSchema,
                         *, workers: int,
                         max_valuation_set_size: int = 2,
                         max_rows_per_unit: int = 1,
                         max_completion_rounds: int = 64,
                         verify_witness: bool = True,
                         budget: int | None = None,
                         governor: ExecutionGovernor | None = None,
                         on_exhausted: str = "error",
                         resume_from: SearchCheckpoint | None = None,
                         use_engine: bool = True,
                         context: EvaluationContext | None = None,
                         backend: str | None = None,
                         analyze: bool = True,
                         analysis: Any = None) -> RCQPResult:
    """``decide_rcqp`` (general E2/E6 search) with the candidate-set
    enumeration sharded.

    Unit enumeration stays in the parent (it is the cheap phase and its
    order defines the shared candidate-set indexing); each worker then
    tests its owned candidate sets end to end, including the nested
    completion and RCDP verification.
    """
    from repro.core.rcqp import (_constraint_tableaux, _enumerate_units,
                                 _query_tableaux)
    from repro.core.valuations import ActiveDomain
    from repro.core.witness import make_complete

    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    assert_decidable_configuration(query, constraints)
    if analysis is None and analyze:
        analysis = validate_for_decision(
            query, constraints, schema=schema,
            master_schema=master.schema, master=master)
    fresh_warnings = (len(analysis.warnings)
                      if analysis is not None and resume_from is None
                      else 0)
    query.validate(schema)

    q_tableaux = _query_tableaux(query, schema)
    cc_tableaux = _constraint_tableaux(constraints, schema)
    adom = ActiveDomain.build(
        instances=(master,),
        queries=[query] + [c.query for c in constraints],
        tableaux=list(q_tableaux) + cc_tableaux)

    if not q_tableaux:
        return RCQPResult(
            status=RCQPStatus.NONEMPTY,
            witness=Instance.empty(schema),
            explanation="the query is unsatisfiable; every partially "
                        "closed database is trivially complete",
            statistics=SearchStatistics(
                analysis_warnings=fresh_warnings))

    phase, start_units = 0, 0
    consumed = [0] * workers
    done = [False] * workers
    base_stats = SearchStatistics()
    if resume_from is not None:
        resume_from.require("rcqp-parallel")
        if resume_from.cursor[0] != workers:
            raise ReproError(
                f"checkpoint from a workers={resume_from.cursor[0]} run "
                f"cannot resume with workers={workers}: shard ownership "
                f"depends on the count")
        phase, start_units = resume_from.cursor[1], resume_from.cursor[2]
        base_stats = resume_from.base_statistics()
        if phase == 1:
            consumed = list(resume_from.payload[0])
            done = list(resume_from.payload[1])

    new_units = 0
    frontier: dict[str, Any] = {"units": start_units}

    def _parent_stats() -> SearchStatistics:
        stats = base_stats.merged(SearchStatistics(
            units_examined=new_units,
            analysis_warnings=fresh_warnings))
        if context is not None:
            stats = stats.merged(context.statistics.since(engine_base))
        return stats

    # Condition E1/E5: all output variables range over finite domains.
    if all(tableau.has_finite_domain(v)
           for tableau in q_tableaux
           for v in tableau.summary_variables()):
        outcome = make_complete(
            query, Instance.empty(schema), master, constraints,
            max_rounds=max_completion_rounds, governor=governor,
            on_exhausted="error", context=context,
            use_engine=context is not None, workers=workers)
        if outcome.complete:
            return RCQPResult(
                status=RCQPStatus.NONEMPTY,
                witness=outcome.database,
                explanation=(
                    "all output variables have finite domains "
                    "(condition E1/E5); witness built by certificate "
                    "completion"))
        raise ReproError(
            "internal error: E1/E5 completion did not converge — raise "
            "max_completion_rounds or report this as a bug")

    # Phase 0: enumerate units serially in the parent (cheap; defines the
    # candidate-set order every shard indexes into).
    try:
        if phase == 0:
            units = _enumerate_units(
                cc_tableaux, adom, max_rows_per_unit,
                governor=governor, skip=start_units, progress=frontier)
            new_units = max(0, frontier["units"] - start_units)
        else:
            units = _enumerate_units(cc_tableaux, adom, max_rows_per_unit)
    except ExecutionInterrupted as interrupt:
        stats = _parent_stats()
        checkpoint = SearchCheckpoint(
            procedure="rcqp-parallel",
            cursor=(workers, 0, frontier["units"]), statistics=stats)
        partial = RCQPResult(
            status=RCQPStatus.EXHAUSTED,
            explanation=(
                f"search interrupted ({interrupt.reason}) at unit "
                f"enumeration position {frontier['units']}; resume from "
                f"the checkpoint to continue"),
            statistics=stats, checkpoint=checkpoint,
            interrupted=interrupt.reason)
        if on_exhausted == "error":
            interrupt.statistics = stats
            interrupt.partial_result = partial
            interrupt.checkpoint = checkpoint
            raise
        return partial

    # Phase 1: shard the candidate-set search.
    max_size = min(max_valuation_set_size, len(units))
    specs = split_governor(governor, workers, consumed=consumed, done=done)
    tasks = _make_tasks(
        "rcqp-sets", workers, specs, consumed, done, use_engine,
        dict(query=query, master=master, constraints=tuple(constraints),
             schema=schema, units=tuple(units), max_size=max_size,
             max_completion_rounds=max_completion_rounds,
             verify_witness=verify_witness),
        backend=_task_backend(context))
    outcomes = run_shards(tasks, governor=governor)
    _reconcile(outcomes, governor)

    stats = _parent_stats().merged(_sum_statistics(outcomes))

    best = _best_witness(outcomes)
    if best is not None:
        witness_database, size = best.data
        return RCQPResult(
            status=RCQPStatus.NONEMPTY,
            witness=witness_database,
            explanation=(
                f"bounding valuation set of size {size} found "
                f"(condition E2/E6); witness verified complete"),
            statistics=stats)

    exhausted = _first_exhausted(outcomes)
    if exhausted is not None:
        checkpoint = SearchCheckpoint(
            procedure="rcqp-parallel", cursor=(workers, 1, 0),
            statistics=stats,
            payload=parallel_checkpoint_state(outcomes))
        partial = RCQPResult(
            status=RCQPStatus.EXHAUSTED,
            explanation=(
                f"parallel candidate-set search interrupted "
                f"({exhausted.reason}); resume from the checkpoint with "
                f"the same worker count to continue"),
            statistics=stats, checkpoint=checkpoint,
            interrupted=exhausted.reason)
        if on_exhausted == "error":
            _raise_interrupted(partial.explanation, exhausted.reason,
                               stats, partial, checkpoint)
        return partial

    space_covered = max_valuation_set_size >= len(units)
    status = (RCQPStatus.EMPTY if space_covered
              else RCQPStatus.EMPTY_UP_TO_BOUND)
    total_examined = stats.candidate_sets_examined
    return RCQPResult(
        status=status,
        explanation=(
            f"no bounding valuation set among {total_examined} candidate "
            f"set(s) over {len(units)} unit(s)"
            + ("" if space_covered else
               f" (search capped at size {max_valuation_set_size})")),
        statistics=stats,
        bound=None if space_covered else max_valuation_set_size)


# ---------------------------------------------------------------------------
# RCQP with INDs (syntactic coNP algorithm)
# ---------------------------------------------------------------------------


def decide_rcqp_with_inds_parallel(
        query: Any, master: Instance,
        constraints: Sequence[ContainmentConstraint],
        schema: DatabaseSchema,
        *, workers: int,
        construct_witness: bool = True,
        verify_witness: bool = True,
        budget: int | None = None,
        governor: ExecutionGovernor | None = None,
        on_exhausted: str = "error",
        resume_from: SearchCheckpoint | None = None,
        use_engine: bool = True,
        context: EvaluationContext | None = None,
        backend: str | None = None) -> RCQPResult:
    """``decide_rcqp_with_inds`` with both valuation scans sharded.

    Phase 0 (is the disjunct relevant?) runs one pool per tableau with
    an early-exit beacon — relevance is existential, so the first
    compatible valuation anywhere settles it.  Phase 1 (witness
    construction) runs one full-scan pool per relevant tableau; workers
    report per-summary first-compatible instantiations and the parent
    merges rank minima, which reproduces the serial ``covered`` choice.
    """
    from repro.core.rcdp import decide_rcdp
    from repro.core.rcqp import (_facts_instance, _ind_covers_variable,
                                 _query_tableaux)

    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    assert_decidable_configuration(query, constraints)
    for constraint in constraints:
        if not constraint.is_ind():
            raise ConstraintError(
                f"decide_rcqp_with_inds requires IND constraints; "
                f"{constraint.name!r} is not an IND")
    query.validate(schema)

    tableaux = _query_tableaux(query, schema)

    phase, start_index = 0, 0
    consumed = [0] * workers
    done = [False] * workers
    base_stats = SearchStatistics()
    relevant_indices: list[int] = []
    witness_facts: list[Fact] = []
    pending_pairs: list[tuple] = []
    if resume_from is not None:
        resume_from.require("rcqp-inds-parallel")
        if resume_from.cursor[0] != workers:
            raise ReproError(
                f"checkpoint from a workers={resume_from.cursor[0]} run "
                f"cannot resume with workers={workers}: shard ownership "
                f"depends on the count")
        phase, start_index = resume_from.cursor[1], resume_from.cursor[2]
        base_stats = resume_from.base_statistics()
        relevant_indices = list(resume_from.payload[0])
        witness_facts = list(resume_from.payload[1])
        pending_pairs = [tuple(pair) for pair in resume_from.payload[2]]
        consumed = list(resume_from.payload[3])
        done = list(resume_from.payload[4])

    accumulated = SearchStatistics()

    def _stats() -> SearchStatistics:
        stats = base_stats.merged(accumulated)
        if context is not None:
            stats = stats.merged(context.statistics.since(engine_base))
        return stats

    def _exhausted_result(cursor_phase: int, cursor_index: int,
                          outcomes: Sequence[ShardOutcome],
                          reason: str) -> RCQPResult:
        shard_state = parallel_checkpoint_state(outcomes)
        pairs = list(pending_pairs)
        for outcome in outcomes:
            pairs.extend(outcome.data or ())
        stats = _stats()
        checkpoint = SearchCheckpoint(
            procedure="rcqp-inds-parallel",
            cursor=(workers, cursor_phase, cursor_index),
            statistics=stats,
            payload=(tuple(relevant_indices), tuple(witness_facts),
                     tuple(pairs)) + shard_state)
        partial = RCQPResult(
            status=RCQPStatus.EXHAUSTED,
            explanation=(
                f"parallel search interrupted ({reason}) after "
                f"{stats.valuations_examined} valuation(s); resume from "
                f"the checkpoint with the same worker count to continue"),
            statistics=stats, checkpoint=checkpoint, interrupted=reason)
        if on_exhausted == "error":
            _raise_interrupted(partial.explanation, reason, stats,
                               partial, checkpoint)
        return partial

    base_payload = dict(query=query, master=master,
                        constraints=tuple(constraints), schema=schema)

    # Phase 0: relevance scan, one sharded pool per tableau.
    if phase == 0:
        for t_index, tableau in enumerate(tableaux):
            if t_index < start_index:
                continue
            if t_index > start_index:
                consumed = [0] * workers
                done = [False] * workers
            specs = split_governor(governor, workers,
                                   consumed=consumed, done=done)
            tasks = _make_tasks(
                "inds-scan", workers, specs, consumed, done, use_engine,
                dict(base_payload, tableau_index=t_index),
                backend=_task_backend(context))
            outcomes = run_shards(tasks, governor=governor)
            _reconcile(outcomes, governor)
            accumulated = accumulated.merged(_sum_statistics(outcomes))

            compatible_exists = any(o.kind == "witness" for o in outcomes)
            if not compatible_exists:
                exhausted = _first_exhausted(outcomes)
                if exhausted is not None:
                    return _exhausted_result(0, t_index, outcomes,
                                             exhausted.reason)
                # The disjunct can never fire in a partially closed
                # database; it cannot break boundedness (second case of
                # Prop. 4.3).
                continue
            relevant_indices.append(t_index)
            for variable in sorted(tableau.summary_variables(),
                                   key=lambda v: v.name):
                if tableau.has_finite_domain(variable):
                    continue  # condition E3
                if not _ind_covers_variable(tableau, variable, constraints):
                    return RCQPResult(
                        status=RCQPStatus.EMPTY,
                        explanation=(
                            f"output variable {variable!r} of disjunct "
                            f"{tableau.query.name!r} has an infinite "
                            f"domain and is not covered by any IND "
                            f"(conditions E3/E4 both fail)"),
                        statistics=_stats())
        phase, start_index = 1, 0
        consumed = [0] * workers
        done = [False] * workers

    witness = None
    if construct_witness:
        relevant = [tableaux[i] for i in relevant_indices]
        # Phase 1: witness construction, one full-scan pool per relevant
        # tableau.
        for r_pos, tableau_index in enumerate(relevant_indices):
            if r_pos < start_index:
                continue
            if r_pos > start_index:
                consumed = [0] * workers
                done = [False] * workers
            specs = split_governor(governor, workers,
                                   consumed=consumed, done=done)
            tasks = _make_tasks(
                "inds-build", workers, specs, consumed, done, use_engine,
                dict(base_payload, tableau_index=tableau_index),
                backend=_task_backend(context))
            outcomes = run_shards(tasks, governor=governor,
                                  use_beacon=False)
            _reconcile(outcomes, governor)
            accumulated = accumulated.merged(_sum_statistics(outcomes))

            exhausted = _first_exhausted(outcomes)
            if exhausted is not None:
                return _exhausted_result(1, r_pos, outcomes,
                                         exhausted.reason)
            covered: dict[tuple, tuple[tuple[int, ...],
                                       tuple[Fact, ...]]] = {}
            for pair in pending_pairs:
                rank, summary, delta = pair
                rank = tuple(rank)
                if summary not in covered or rank < covered[summary][0]:
                    covered[summary] = (rank, tuple(delta))
            for outcome in outcomes:
                for rank, summary, delta in outcome.data or ():
                    rank = tuple(rank)
                    if summary not in covered or rank < covered[summary][0]:
                        covered[summary] = (rank, tuple(delta))
            pending_pairs = []
            for _, delta in sorted(covered.values(), key=lambda v: v[0]):
                witness_facts.extend(delta)

        witness = _facts_instance(schema, witness_facts)
        if verify_witness:
            try:
                verdict = decide_rcdp(query, witness, master, constraints,
                                      governor=governor, context=context,
                                      use_engine=context is not None,
                                      workers=workers)
            except ExecutionInterrupted as interrupt:
                # Verification restarts from scratch on resume, exactly
                # like the serial decider.
                stats = _stats()
                checkpoint = SearchCheckpoint(
                    procedure="rcqp-inds-parallel",
                    cursor=(workers, 1, len(relevant)),
                    statistics=stats,
                    payload=(tuple(relevant_indices), tuple(witness_facts),
                             (), (0,) * workers, (True,) * workers))
                partial = RCQPResult(
                    status=RCQPStatus.EXHAUSTED,
                    explanation=(
                        f"parallel search interrupted ({interrupt.reason}) "
                        f"during witness verification; resume from the "
                        f"checkpoint with the same worker count to "
                        f"continue"),
                    statistics=stats, checkpoint=checkpoint,
                    interrupted=interrupt.reason)
                if on_exhausted == "error":
                    interrupt.statistics = stats
                    interrupt.partial_result = partial
                    interrupt.checkpoint = checkpoint
                    raise
                return partial
            if verdict.status is not RCDPStatus.COMPLETE:
                raise ReproError(
                    "internal error: Proposition 4.3 witness failed "
                    "RCDP verification — please report this as a bug")

    return RCQPResult(
        status=RCQPStatus.NONEMPTY,
        witness=witness,
        explanation=(
            "every relevant disjunct is syntactically bounded "
            "(conditions E3/E4); witness covers all achievable output "
            "tuples over the active domain"),
        statistics=_stats())
