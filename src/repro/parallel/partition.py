"""Deterministic partitioning of a search space across worker shards.

The parallel drivers split three things:

* **the enumeration** — via :class:`ShardSpec`: shard ``i`` of ``n``
  owns exactly the candidates whose deterministic position satisfies
  ``position % n == i``, so the union over shards is the serial stream
  for *every* shard count (the determinism guarantee the differential
  tests pin down);
* **the governor** — via :class:`GovernorSpec`: each worker receives a
  picklable description of its share of the parent's *remaining* budget
  (floor division, remainder to the lowest shards), the parent's
  absolute deadline (monotonic clocks are system-wide on Linux, so the
  instant transfers across ``fork``), a private copy of the fault
  injector (fault clocks are per-worker), and a flag wiring it to the
  pool's shared cancellation event;
* **resume state** — per-shard consumed counts and done flags, carried
  in parallel checkpoints and unpacked by :func:`unpack_parallel_state`.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import ReproError
from repro.obs import Observation, obs_of
from repro.runtime import Budget, Deadline, ExecutionGovernor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.faults import FaultInjector
    from repro.runtime.retry import RetryPolicy

__all__ = ["resolve_workers", "suggest_workers", "ShardSpec",
           "GovernorSpec", "split_governor", "materialize_governor",
           "EventCancellation", "parallel_checkpoint_state",
           "unpack_parallel_state"]

#: Below this many predicted ticks per worker, adding a process costs
#: more (spawn + pickle + merge) than the slice it would own.
MIN_TICKS_PER_WORKER = 25_000


def suggest_workers(estimate: Any, *,
                    cpu_count: int | None = None) -> int:
    """A ``workers=`` suggestion from a static cost estimate.

    *estimate* is anything with a ``total_predicted`` tick count (a
    `repro.analysis.cost.CostEstimate`) or a plain integer.  The
    suggestion gives every worker at least :data:`MIN_TICKS_PER_WORKER`
    predicted ticks — pool startup dominates below that
    (BENCH_parallel.json) — and never exceeds the machine's cores.
    """
    ticks = int(getattr(estimate, "total_predicted", estimate))
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if ticks <= 0 or cores <= 1:
        return 1
    return max(1, min(cores, ticks // MIN_TICKS_PER_WORKER))


def resolve_workers(workers: int | None) -> int:
    """Normalize the deciders' ``workers=`` knob to a positive count.

    ``None`` and ``1`` select the serial path; ``0`` means "all cores"
    (:func:`os.cpu_count`); negative counts are rejected.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise ReproError(
            f"workers must be nonnegative (0 = all cores), got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return int(workers)


@dataclass(frozen=True)
class ShardSpec:
    """One worker's slice of a deterministic enumeration.

    *skip* fast-forwards past owned candidates a previous (interrupted)
    run already processed; *done* marks a shard whose slice was fully
    exhausted before the interruption, so resuming skips it entirely.
    """

    index: int
    count: int
    skip: int = 0
    done: bool = False

    def owns(self, position: int) -> bool:
        return position % self.count == self.index


def _shares(total: int | None, order: Sequence[int],
            count: int) -> list[int | None]:
    """Shares of *total* per shard index, split across the shards listed
    in *order* (remainder to the earliest entries); shards not in *order*
    get 0.  ``None`` (unlimited) passes through to everyone."""
    if total is None:
        return [None] * count
    result = [0] * count
    base, remainder = divmod(total, len(order))
    for position, index in enumerate(order):
        result[index] = base + (1 if position < remainder else 0)
    return result


@dataclass(frozen=True)
class GovernorSpec:
    """Picklable description of one worker's governor."""

    budget_limit: int | None = None
    kind_limits: dict[str, int] = field(default_factory=dict)
    deadline_at: float | None = None
    faults: "FaultInjector | None" = None
    watch_cancellation: bool = False
    #: Mirror the parent's tracing into the worker: the worker attaches
    #: its own :class:`~repro.obs.Observation`, whose spans/metrics come
    #: back on the shard outcome and are rank-merged by the parent.
    trace: bool = False
    #: The parent governor's :class:`~repro.runtime.retry.RetryPolicy`,
    #: threaded through so a respawned shard's governor spec carries the
    #: same policy — retried attempts draw from the same budget ledger
    #: and honor the same absolute deadline as their predecessors.
    retry: "RetryPolicy | None" = None


def split_governor(governor: ExecutionGovernor | None, count: int,
                   *, consumed: Sequence[int] | None = None,
                   done: Sequence[bool] | None = None,
                   ) -> list[GovernorSpec | None]:
    """Split *governor*'s remaining allowance into *count* worker specs.

    The total budget and every per-kind cap are divided by floor across
    the shards that still have work (*done* marks finished ones), so the
    shares sum exactly to the remaining allowance: the pool as a whole
    can never admit more work than the serial search would have.  The
    division remainder goes to the least-advanced shards (*consumed*
    ascending) — this makes multi-leg resumption live even when the
    remaining budget is smaller than the worker count, because every leg
    hands at least one admissible tick to a shard that was starved on
    the previous one.  Deadlines pass through as absolute instants; the
    fault injector is copied per worker (each worker advances its own
    fault clock — see ``docs/PARALLEL.md``).
    """
    if governor is None:
        return [None] * count
    done = list(done) if done is not None else [False] * count
    consumed = list(consumed) if consumed is not None else [0] * count
    active = [index for index in range(count) if not done[index]]
    if not active:
        active = list(range(count))
    order = sorted(active, key=lambda index: (consumed[index], index))
    budget = governor.budget
    total_shares = _shares(
        budget.remaining if budget is not None else None, order, count)
    kind_shares: dict[str, list[int | None]] = {}
    if budget is not None:
        for kind, cap in budget.kind_limits.items():
            kind_shares[kind] = _shares(
                max(0, cap - budget.spent_for(kind)), order, count)
    deadline_at = (governor.deadline.at
                   if governor.deadline is not None else None)
    observation = obs_of(governor)
    trace = observation is not None and observation.tracer.enabled
    return [GovernorSpec(
        budget_limit=total_shares[index],
        kind_limits={kind: shares[index]
                     for kind, shares in kind_shares.items()},
        deadline_at=deadline_at,
        faults=governor.faults,
        watch_cancellation=governor.cancellation is not None,
        trace=trace,
        retry=governor.retry,
    ) for index in range(count)]


class EventCancellation:
    """Duck-typed cancellation token over a shared process Event.

    The real :class:`~repro.runtime.control.CancellationToken` wraps a
    ``threading.Event`` and cannot cross a process boundary; the pool
    shares one ``multiprocessing`` event instead, which the parent sets
    when its own token is cancelled.  The governor only reads
    ``.cancelled``, so this adapter is all a worker needs.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Any) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


def materialize_governor(spec: GovernorSpec | None, cancel_event: Any,
                         *, arm_process_faults: bool = True,
                         ) -> ExecutionGovernor | None:
    """Build a worker-local governor from its picklable *spec*.

    Even a spec with no limits yields a governor with an unlimited
    budget: that budget is the worker's tick *ledger*, whose per-kind
    snapshot travels back in the shard outcome so the parent can absorb
    the exact charges into its own governor.

    *arm_process_faults* enables the injector's process-level fault
    kinds (``worker_crash``/``worker_hang``/``outcome_drop``) — true in
    a worker process, false for a quarantined in-process re-run, which
    must not be crashable by the faults that forced it.
    """
    if spec is None:
        return None
    budget = Budget(limit=spec.budget_limit, **spec.kind_limits)
    deadline = (Deadline(spec.deadline_at)
                if spec.deadline_at is not None else None)
    cancellation = (EventCancellation(cancel_event)
                    if spec.watch_cancellation and cancel_event is not None
                    else None)
    faults = copy.deepcopy(spec.faults) if spec.faults is not None else None
    if faults is not None and arm_process_faults:
        faults.arm_process_faults()
    governor = ExecutionGovernor(budget=budget, deadline=deadline,
                                 cancellation=cancellation, faults=faults,
                                 retry=spec.retry)
    if spec.trace:
        Observation.attach(governor)
    return governor


def parallel_checkpoint_state(outcomes: Any) -> tuple[tuple[int, ...],
                                                      tuple[bool, ...]]:
    """Per-shard ``(consumed, done)`` state for a parallel checkpoint."""
    ordered = sorted(outcomes, key=lambda o: o.index)
    return (tuple(o.consumed for o in ordered),
            tuple(o.kind == "complete" for o in ordered))


def unpack_parallel_state(checkpoint: Any, procedure: str, workers: int,
                          ) -> tuple[list[int], list[bool]]:
    """Validate and unpack a parallel checkpoint's per-shard state.

    Parallel checkpoints record the shard count they were taken under
    (``cursor[0]``); the partition is a function of that count, so a
    resumed run must use the same number of workers.
    """
    checkpoint.require(procedure)
    count = checkpoint.cursor[0]
    if count != workers:
        raise ReproError(
            f"checkpoint from a workers={count} run cannot resume with "
            f"workers={workers}: shard ownership depends on the count")
    consumed, done = checkpoint.payload[0], checkpoint.payload[1]
    return list(consumed), list(done)
