"""Shard supervision: fault-tolerant fan-out/fan-in for the worker pool.

:class:`ShardSupervisor` replaces the pool's old fail-fast collection
loop (any worker death aborted the whole decision) with a recoverable
protocol built on three pieces:

**Heartbeat progress snapshots.**  Each supervised worker publishes a
``"progress"`` :class:`~repro.parallel.worker.ShardOutcome` on the
policy's heartbeat interval — a full snapshot (consumed count,
statistics, budget ledger, partial data) taken at a candidate
boundary.  A snapshot is simultaneously a liveness beat and an exact
restart checkpoint: ``consumed`` is directly a
:class:`~repro.parallel.partition.ShardSpec.skip` value, the same
cursor the serial resume path uses.

**Checkpoint-based retry.**  A worker that dies without reporting
(crash, OOM kill) or goes silent past ``silent_after`` (hang) is
respawned from its last snapshot, after an exponential backoff with
seeded jitter.  The dead attempt's snapshot is folded into a
*committed* prefix — statistics, ledger charges, and partial data the
final outcome will be merged with — and the replacement's governor
spec is carved out of the **same** budget: its limits are the original
share minus the committed charges, and its deadline is the parent's
unchanged absolute instant.  Work the dead attempt did between its
last snapshot and its death is re-scanned (the counters stay exact
because the snapshot was taken at a candidate boundary, so committed +
retry covers the shard's slice with no gap and no overlap).  The fault
injector is reseeded per attempt, so a probabilistic crash schedule
differs across attempts.

**Poison-shard quarantine.**  A shard that fails ``max_retries + 1``
times is poison.  Under ``on_poison="serial"`` (default) its remaining
slice is re-run **in-process**, with process-level fault injection
disarmed — the in-process runner cannot crash, so the supervised run
always terminates, the union of scanned slices stays exact, and the
verdict/witness remain worker-count-invariant even as the per-attempt
crash probability approaches 1.  Under ``on_poison="error"`` the pool
raises :class:`~repro.errors.WorkerPoolError` instead.

A worker that *reports* an ``"error"`` outcome (an unexpected
exception, traceback attached) is **not** retried: that is a
deterministic bug, and replaying it would reproduce it.  It surfaces
as :class:`~repro.errors.WorkerPoolError` after the pool drains,
exactly like the legacy path.

Budget exhaustion is never crash-shaped: a replacement whose share is
already spent reports ``"exhausted"`` on its first tick, and the
parent assembles the usual resumable parallel checkpoint from the
cumulative ``consumed`` counts.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import queue as queue_module
import time
import traceback
from typing import Any, Sequence

from repro.errors import ReproError, WorkerPoolError
from repro.obs import obs_of, obs_span
from repro.parallel.beacon import WitnessBeacon
from repro.parallel.partition import materialize_governor
from repro.parallel.worker import (_RUNNERS, ShardOutcome, ShardTask,
                                   shard_entry)
from repro.runtime import ExecutionGovernor, RetryPolicy

__all__ = ["ShardSupervisor"]

#: Grace period before a dead, silent worker is declared lost — long
#: enough for a final outcome already in flight (the queue's feeder
#: thread may lag the process's death) to drain.  Unsupervised pools
#: use it as-is (the legacy fixed poll); supervised pools shorten it
#: toward the heartbeat interval for faster recovery.
_DEAD_WORKER_GRACE = 1.0

_QUEUE_POLL = 0.05

#: Outcome kinds whose ``data`` accumulates per shard (rank/summary
#: pairs merged by the parent) and therefore must be concatenated
#: across attempts; witness-style kinds carry final-only data.
_ACCUMULATING_KINDS = frozenset({"missing", "inds-build"})


def _mp_context() -> multiprocessing.context.BaseContext:
    preferred = os.environ.get("REPRO_PARALLEL_START_METHOD")
    methods = multiprocessing.get_all_start_methods()
    if preferred:
        if preferred not in methods:
            raise ReproError(
                f"REPRO_PARALLEL_START_METHOD={preferred!r} is not "
                f"available on this platform (choices: {methods})")
        return multiprocessing.get_context(preferred)
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


@dataclasses.dataclass
class _ShardState:
    """Supervisor-side bookkeeping for one shard."""

    task: ShardTask
    process: Any = None
    #: Attempts started so far; the live attempt's id is ``attempt - 1``.
    attempt: int = 0
    last_seen: float = 0.0
    #: When the live process was first observed dead without a final.
    dead_at: float | None = None
    #: When a scheduled respawn becomes due (backoff), else None.
    respawn_at: float | None = None
    #: Latest progress snapshot from the live attempt.
    snapshot: ShardOutcome | None = None
    #: Merged results of dead attempts' last snapshots.
    committed_stats: Any = None
    committed_ticks: dict[str, int] = dataclasses.field(default_factory=dict)
    committed_data: list = dataclasses.field(default_factory=list)
    #: Resume cursor for the next attempt (a ShardSpec.skip value).
    restart_skip: int = 0
    failures: list[str] = dataclasses.field(default_factory=list)
    final: ShardOutcome | None = None


class ShardSupervisor:
    """Run shard tasks under a retry policy; return one outcome each.

    The policy is resolved in order: the explicit *retry* argument, the
    parent governor's :attr:`~repro.runtime.governor.ExecutionGovernor.
    retry` slot, then the default :class:`~repro.runtime.RetryPolicy`.
    ``RetryPolicy.disabled()`` selects the legacy fail-fast pool: no
    heartbeats, no retries, any worker death raises.
    """

    def __init__(self, tasks: Sequence[ShardTask], *,
                 governor: ExecutionGovernor | None = None,
                 use_beacon: bool = True,
                 retry: RetryPolicy | None = None) -> None:
        self._tasks = list(tasks)
        self._governor = governor
        if retry is None and governor is not None:
            retry = governor.retry
        self._policy = retry if retry is not None else RetryPolicy()
        self._use_beacon = use_beacon
        self._observation = obs_of(governor)
        self._merge_data = bool(self._tasks) and \
            self._tasks[0].kind in _ACCUMULATING_KINDS
        if self._policy.supervise:
            self._death_grace = min(_DEAD_WORKER_GRACE,
                                    max(0.2, self._policy.heartbeat))
        else:
            self._death_grace = _DEAD_WORKER_GRACE

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> list[ShardOutcome]:
        ctx = _mp_context()
        self._ctx = ctx
        self._beacon = WitnessBeacon(ctx) if self._use_beacon else None
        self._cancel_event = ctx.Event()
        self._queue = ctx.Queue()
        self._inline: dict[int, ShardOutcome] = {}
        self._states: dict[int, _ShardState] = {}
        for task in self._tasks:
            if task.shard.done:
                # Fully scanned before the interruption; answered inline.
                self._inline[task.shard.index] = ShardOutcome(
                    index=task.shard.index, kind="complete",
                    consumed=task.shard.skip)
                continue
            self._states[task.shard.index] = _ShardState(
                task=task, restart_skip=task.shard.skip)
        try:
            for state in self._states.values():
                self._spawn(state)
            while any(s.final is None for s in self._states.values()):
                self._propagate_cancellation()
                self._drain()
                now = time.monotonic()
                for state in self._states.values():
                    if state.final is not None:
                        continue
                    if state.respawn_at is not None:
                        if now >= state.respawn_at:
                            self._spawn(state)
                        continue
                    process = state.process
                    if process is not None and not process.is_alive():
                        if state.dead_at is None:
                            state.dead_at = now
                        elif now - state.dead_at >= self._death_grace:
                            self._fail(state,
                                       f"exited with code "
                                       f"{process.exitcode} before "
                                       f"reporting a result")
                    elif (self._policy.supervise
                          and now - state.last_seen
                          > self._policy.effective_silent_after):
                        self._fail(state,
                                   f"went silent for more than "
                                   f"{self._policy.effective_silent_after:.1f}"
                                   f"s (missed heartbeats)", kill=True)
        finally:
            self._teardown()

        ordered = [self._inline.get(task.shard.index)
                   or self._states[task.shard.index].final
                   for task in self._tasks]
        errors = [o for o in ordered if o.kind == "error"]
        if errors:
            details = "\n".join(
                f"[shard {o.index}] {o.error}" for o in errors)
            raise WorkerPoolError(
                f"{len(errors)} of {len(self._tasks)} search worker(s) "
                f"failed", details=details)
        return ordered

    # ------------------------------------------------------------------
    # Spawning and failure handling
    # ------------------------------------------------------------------

    def _spawn(self, state: _ShardState) -> None:
        attempt = state.attempt
        state.attempt += 1
        task = state.task if attempt == 0 else self._respawn_task(state)
        args: tuple = (task, self._beacon, self._cancel_event, self._queue)
        if self._policy.supervise:
            args += (self._policy.heartbeat, attempt)
        process = self._ctx.Process(target=shard_entry, args=args,
                                    daemon=True)
        process.start()
        state.process = process
        state.respawn_at = None
        state.dead_at = None
        state.last_seen = time.monotonic()

    def _respawn_task(self, state: _ShardState) -> ShardTask:
        """The original task, fast-forwarded to the committed cursor and
        re-budgeted with whatever its dead attempts did not spend."""
        task = state.task
        shard = dataclasses.replace(task.shard, skip=state.restart_skip)
        spec = task.governor
        if spec is not None:
            total = sum(state.committed_ticks.values())
            budget_limit = spec.budget_limit
            if budget_limit is not None:
                budget_limit = max(0, budget_limit - total)
            kind_limits = {
                kind: (cap if cap is None
                       else max(0, cap - state.committed_ticks.get(kind, 0)))
                for kind, cap in spec.kind_limits.items()}
            faults = spec.faults
            if faults is not None:
                faults = faults.reseeded(
                    1 + state.task.shard.index + 7919 * state.attempt)
            spec = dataclasses.replace(spec, budget_limit=budget_limit,
                                       kind_limits=kind_limits,
                                       faults=faults)
        return dataclasses.replace(task, shard=shard, governor=spec)

    def _fail(self, state: _ShardState, reason: str,
              kill: bool = False) -> None:
        process = state.process
        if kill and process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck in a syscall
                process.kill()
                process.join(timeout=1.0)
        state.process = None
        state.dead_at = None
        self._commit_snapshot(state)
        state.failures.append(reason)
        index = state.task.shard.index
        self._count("crash", index)
        if not self._policy.supervise:
            state.final = ShardOutcome(
                index=index, kind="error",
                error=f"worker {index} {reason}")
            return
        retries_used = state.attempt - 1
        if retries_used >= self._policy.max_retries:
            self._poison(state, reason)
            return
        delay = self._policy.backoff_delay(retries_used, key=index)
        state.respawn_at = time.monotonic() + delay
        self._count("retry", index)
        self._event("supervisor.retry", index=index, attempt=state.attempt,
                    reason=reason, delay=round(delay, 4))

    def _commit_snapshot(self, state: _ShardState) -> None:
        """Fold the dead attempt's last progress snapshot into the
        committed prefix the final outcome will be merged with."""
        snapshot = state.snapshot
        if snapshot is None:
            return
        state.committed_stats = (
            snapshot.statistics if state.committed_stats is None
            else state.committed_stats.merged(snapshot.statistics))
        for kind, amount in snapshot.ticks.items():
            state.committed_ticks[kind] = \
                state.committed_ticks.get(kind, 0) + amount
        if self._merge_data and snapshot.data:
            state.committed_data.extend(snapshot.data)
        state.restart_skip = snapshot.consumed
        state.snapshot = None

    def _poison(self, state: _ShardState, reason: str) -> None:
        index = state.task.shard.index
        if self._policy.on_poison == "error":
            state.final = ShardOutcome(
                index=index, kind="error",
                error=(f"worker {index} is poison: {state.attempt} "
                       f"attempt(s) failed; last failure: {reason}"))
            return
        self._count("quarantine", index)
        attempt = state.attempt
        state.attempt += 1
        task = self._respawn_task(state)
        with obs_span(self._observation, "supervisor.quarantine",
                      index=index, attempt=attempt,
                      failures=len(state.failures)):
            # Process faults stay disarmed: graceful degradation to
            # serial must not be crashable by the faults that forced it.
            governor = materialize_governor(task.governor,
                                            self._cancel_event,
                                            arm_process_faults=False)
            worker_obs = obs_of(governor)
            try:
                with obs_span(worker_obs, "shard", kind=task.kind,
                              index=index, attempt=attempt):
                    outcome = _RUNNERS[task.kind](task, self._beacon,
                                                  governor, None)
                if worker_obs is not None:
                    outcome.obs = worker_obs.payload()
            except Exception:
                outcome = ShardOutcome(index=index, kind="error",
                                       error=traceback.format_exc())
        outcome.attempt = attempt
        self._finish(state, outcome)
        # The in-process run starved the drain loop; give live workers a
        # fresh liveness horizon so they are not misjudged as silent.
        now = time.monotonic()
        for other in self._states.values():
            if other.final is None:
                other.last_seen = now

    # ------------------------------------------------------------------
    # Queue draining and reconciliation
    # ------------------------------------------------------------------

    def _drain(self) -> None:
        try:
            self._accept(self._queue.get(timeout=_QUEUE_POLL))
            while True:
                self._accept(self._queue.get_nowait())
        except queue_module.Empty:
            pass

    def _accept(self, outcome: ShardOutcome) -> None:
        state = self._states.get(outcome.index)
        if state is None or state.final is not None:
            return
        if outcome.attempt != state.attempt - 1:
            return  # straggler from an attempt already given up on
        state.last_seen = time.monotonic()
        state.dead_at = None
        if outcome.kind == "progress":
            state.snapshot = outcome
            # A heartbeat snapshot is also a live progress sample: ship
            # the shard's cumulative tick count (committed prefix +
            # this attempt) to the parent's progress reporter, if any.
            self._ship_progress(
                state.task.shard.index,
                sum(state.committed_ticks.values())
                + sum((outcome.ticks or {}).values()))
            return
        self._finish(state, outcome)

    def _finish(self, state: _ShardState, outcome: ShardOutcome) -> None:
        """Merge the committed prefix of dead attempts into the final
        outcome; one outcome per shard is what the parent reconciles."""
        if state.committed_stats is not None:
            outcome.statistics = \
                state.committed_stats.merged(outcome.statistics)
        if state.committed_ticks:
            ticks = dict(state.committed_ticks)
            for kind, amount in outcome.ticks.items():
                ticks[kind] = ticks.get(kind, 0) + amount
            outcome.ticks = ticks
        if self._merge_data and state.committed_data:
            outcome.data = tuple(state.committed_data) \
                + tuple(outcome.data or ())
        state.snapshot = None
        state.final = outcome
        self._ship_progress(state.task.shard.index,
                            sum((outcome.ticks or {}).values()))

    def _ship_progress(self, index: int, ticks: int) -> None:
        """Forward one shard's cumulative tick count to the parent
        governor's progress reporter.  Observation-only: failures are
        swallowed and the supervision protocol is untouched."""
        progress = getattr(self._governor, "progress", None)
        if progress is None:
            return
        try:
            progress.update_shard(index, ticks)
        except Exception:  # pragma: no cover - defensive
            pass

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _propagate_cancellation(self) -> None:
        governor = self._governor
        if (governor is not None and governor.cancellation is not None
                and governor.cancellation.cancelled):
            self._cancel_event.set()

    def _count(self, event: str, shard: int) -> None:
        if self._observation is not None:
            self._observation.metrics.record_supervision(event, shard=shard)

    def _event(self, name: str, **attributes: Any) -> None:
        with obs_span(self._observation, name, **attributes):
            pass

    def _teardown(self) -> None:
        terminated = False
        for state in self._states.values():
            process = state.process
            if process is None:
                continue
            if process.is_alive():
                process.join(timeout=2.0)
            if process.is_alive():
                self._cancel_event.set()
                process.terminate()
                process.join(timeout=2.0)
                terminated = True
            if process.is_alive():  # pragma: no cover - stuck in a syscall
                process.kill()
                process.join(timeout=1.0)
        self._queue.close()
        if terminated:
            # A terminated worker may have died mid-write; without this
            # the parent could hang flushing the queue's feeder thread
            # at interpreter exit (notably under the spawn method).
            self._queue.cancel_join_thread()
