"""Early-exit broadcast for parallel witness searches.

When one worker finds a counterexample witness, the other workers only
need to keep searching the part of their shard that could contain an
*earlier* witness — earlier in the deterministic serial order, measured
by each candidate's rank tuple (for RCDP: ``(tableau_index,
prefix_index, position)``).  The beacon is the shared-memory cell that
carries the best (minimum) witness rank found so far:

* a lock-free flag byte that readers poll once per candidate — until a
  witness exists anywhere, the cost of the beacon is one shared-memory
  load per candidate;
* a locked rank array consulted only after the flag is set.

The parent then takes the minimum rank across all witness outcomes,
which is exactly the witness the serial search would have returned
first: ranks are unique per candidate, and the worker owning the
minimum-rank witness can never be stopped by the beacon, because any
cutoff it observes is a strictly larger rank than candidates it still
has to examine.
"""

from __future__ import annotations

from typing import Any

__all__ = ["WitnessBeacon", "RANK_WIDTH"]

#: Maximum rank-tuple arity carried by the beacon.  RCDP ranks are
#: 3-wide, the bounded/RCQP searches use 1- or 2-wide ranks; shorter
#: ranks are right-padded with zeros, which preserves the lexicographic
#: order because all ranks within one search have the same arity.
RANK_WIDTH = 4

_SENTINEL = (1 << 62) - 1


class WitnessBeacon:
    """A shared minimum over witness rank tuples."""

    def __init__(self, ctx: Any) -> None:
        self._flag = ctx.Value("b", 0, lock=False)
        self._best = ctx.Array("q", [_SENTINEL] * RANK_WIDTH)

    @staticmethod
    def _pad(rank: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(rank) + (0,) * (RANK_WIDTH - len(rank))

    def offer(self, rank: tuple[int, ...]) -> None:
        """Publish a witness at *rank*; the beacon keeps the minimum."""
        padded = self._pad(rank)
        with self._best.get_lock():
            if padded < tuple(self._best):
                self._best[:] = padded
        # The flag is written last so a reader that sees it set is
        # guaranteed to find a real rank behind the lock.
        self._flag.value = 1

    def cutoff(self) -> tuple[int, ...] | None:
        """The best published rank, or None if no witness exists yet."""
        if not self._flag.value:
            return None
        with self._best.get_lock():
            return tuple(self._best)

    def superseded(self, rank: tuple[int, ...]) -> bool:
        """True when a candidate at *rank* can no longer be the serial-first
        witness, so the caller's shard may stop early.

        The comparison is strict: ranks are unique per candidate, so a
        candidate *equal* to the cutoff is the published witness itself
        being re-examined — which happens when a supervised retry
        replays a shard whose previous attempt offered a witness and
        then died before reporting it.  The replay must re-report the
        witness, not stop as superseded.
        """
        if not self._flag.value:
            return False
        cutoff = self.cutoff()
        return cutoff is not None and self._pad(rank) > cutoff
