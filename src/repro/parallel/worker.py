"""Worker-side runners for the parallel search drivers.

Each runner is the shard-local image of one serial search loop from
``core/`` — same admission order, same tick kinds, same statistics
counters — restricted to the candidates its :class:`~repro.parallel.
partition.ShardSpec` owns.  The faithfulness is deliberate and load-
bearing: the differential test suite asserts that verdicts, witnesses,
and (on full enumerations) the merged ``valuations_examined`` /
``constraint_checks`` counters are *identical* between ``workers=1`` and
``workers=N``, which only holds because every runner mirrors its serial
twin line for line.

A runner returns a :class:`ShardOutcome` — never raises:
:class:`~repro.errors.ExecutionInterrupted` becomes an ``"exhausted"``
outcome carrying the shard's resume cursor, and any other exception is
caught by :func:`shard_entry` and shipped back as an ``"error"``
outcome with the formatted traceback.

Under supervision (:mod:`repro.parallel.supervise`) a worker also
publishes periodic ``"progress"`` outcomes: full snapshots (consumed
count, statistics, ledger, partial data) taken at a candidate boundary,
so each doubles as a liveness heartbeat *and* an exact restart
checkpoint.  A :class:`_Beat` daemon thread arms a flag on the
heartbeat interval; the search loop checks the flag between candidates
and publishes — a loop that stops advancing therefore goes silent,
which is exactly how the supervisor detects a hung worker.
"""

from __future__ import annotations

import os
import threading
import traceback
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.constraints.containment import (satisfies_all,
                                           satisfies_all_extension)
from repro.core.results import RCDPStatus, SearchStatistics
from repro.core.valuations import ActiveDomain, iter_sharded_valuations
from repro.engine import EvaluationContext
from repro.errors import ExecutionInterrupted
from repro.obs import obs_of, obs_span
from repro.relational.instance import Instance, extend_unvalidated
from repro.parallel.beacon import WitnessBeacon
from repro.parallel.partition import (GovernorSpec, ShardSpec,
                                      materialize_governor)

__all__ = ["ShardTask", "ShardOutcome", "shard_entry"]

Fact = tuple[str, tuple]


@dataclass(frozen=True)
class ShardTask:
    """A picklable description of one worker's job.

    *backend* names the storage backend the worker's private
    :class:`~repro.engine.EvaluationContext` runs on.  Storages
    themselves never cross the process boundary (they may hold an
    sqlite connection); each worker re-attaches fresh ones to the
    unpickled instances on first use.
    """

    kind: str
    shard: ShardSpec
    governor: GovernorSpec | None
    use_engine: bool
    payload: dict[str, Any]
    backend: str = "python"


@dataclass
class ShardOutcome:
    """What one shard reports back to the parent.

    *kind* is one of ``"complete"`` (shard fully scanned, nothing
    found), ``"witness"`` (found a counterexample/witness at *rank*),
    ``"superseded"`` (stopped early because the beacon carries a
    strictly earlier witness), ``"exhausted"`` (governor tripped;
    *consumed* is the resume cursor), ``"progress"`` (a mid-run
    heartbeat snapshot under supervision — same fields, not final), or
    ``"error"``.

    *consumed* counts the owned candidates this shard has fully
    processed across its lifetime — including the skip prefix of a
    resumed run — so it is directly a :class:`ShardSpec.skip` value.
    *ticks* is the per-kind snapshot of the worker governor's budget
    ledger, absorbed into the parent governor on reconciliation.
    """

    index: int
    kind: str
    rank: tuple[int, ...] | None = None
    data: Any = None
    consumed: int = 0
    statistics: SearchStatistics = field(default_factory=SearchStatistics)
    ticks: dict[str, int] = field(default_factory=dict)
    reason: str | None = None
    error: str | None = None
    #: When the parent traces, the worker observation's picklable
    #: ``{"spans": ..., "metrics": ...}`` payload, grafted into the
    #: parent's trace as a ``shard-N`` lane (``shard-N.aK`` for retry
    #: attempt K) on reconciliation.
    obs: dict | None = None
    #: Which attempt at this shard produced the outcome (0 = first);
    #: the supervisor discards messages from attempts it gave up on.
    attempt: int = 0


def _worker_context(task: ShardTask) -> tuple[EvaluationContext | None, Any]:
    context = (EvaluationContext(backend=task.backend)
               if task.use_engine else None)
    base = context.statistics.copy() if context is not None else None
    return context, base


def _engine_delta(context: EvaluationContext | None,
                  base: Any) -> SearchStatistics:
    if context is None:
        return SearchStatistics()
    return context.statistics.since(base)


def _ledger(governor: Any) -> dict[str, int]:
    if governor is None or governor.budget is None:
        return {}
    return dict(governor.budget.snapshot())


class _Beat:
    """Worker-side heartbeat pacing.

    A daemon timer thread arms :attr:`due` every *interval* seconds;
    the search loop polls the flag between candidates (one attribute
    read on the hot path) and, when due, publishes a ``"progress"``
    snapshot outcome.  Publishing from the loop — not the timer — keeps
    snapshots consistent (taken at a candidate boundary) and makes a
    hung loop go silent, which is the supervisor's hang signal.
    """

    __slots__ = ("queue", "attempt", "due", "_stop")

    def __init__(self, queue: Any, interval: float, attempt: int) -> None:
        self.queue = queue
        self.attempt = attempt
        self.due = False
        self._stop = threading.Event()
        thread = threading.Thread(
            target=self._pace, args=(interval,), daemon=True)
        thread.start()

    def _pace(self, interval: float) -> None:
        while not self._stop.wait(interval):
            self.due = True

    def publish(self, outcome: "ShardOutcome") -> None:
        self.due = False
        outcome.attempt = self.attempt
        self.queue.put(outcome)

    def stop(self) -> None:
        self._stop.set()


# ---------------------------------------------------------------------------
# RCDP: one shard of the valid-valuation enumeration
# ---------------------------------------------------------------------------


def _run_rcdp(task: ShardTask, beacon: WitnessBeacon | None,
              governor: Any, beat: "_Beat | None" = None) -> ShardOutcome:
    from repro.core.rcdp import _prepare_search, split_ind_constraints

    p = task.payload
    query, database = p["query"], p["database"]
    master, constraints = p["master"], p["constraints"]
    shard = task.shard
    context, engine_base = _worker_context(task)

    tableaux, adom = _prepare_search(query, database, master, constraints,
                                     context)
    answers = (context.evaluate(query, database) if context is not None
               else query.evaluate(database))
    row_filter, other_constraints = split_ind_constraints(
        constraints, master, use_ind_pruning=p["use_ind_pruning"],
        context=context)

    skip = shard.skip
    consumed = shard.skip
    examined = 0
    constraint_checks = 0

    def _stats() -> SearchStatistics:
        return SearchStatistics(
            valuations_examined=examined,
            constraint_checks=constraint_checks,
        ).merged(_engine_delta(context, engine_base))

    def _outcome(kind: str, **extra: Any) -> ShardOutcome:
        return ShardOutcome(index=shard.index, kind=kind, consumed=consumed,
                            statistics=_stats(), ticks=_ledger(governor),
                            **extra)

    governed = (context.governed(governor) if context is not None
                else nullcontext())
    try:
        with governed:
            for tableau_index, tableau in enumerate(tableaux):
                if not tableau.satisfiable:
                    continue
                for prefix_index, position, valuation in \
                        iter_sharded_valuations(
                            tableau, adom, shard_index=shard.index,
                            shard_count=shard.count, fresh="own",
                            row_filter=row_filter):
                    if skip > 0:
                        skip -= 1
                        continue
                    if beat is not None and beat.due:
                        beat.publish(_outcome("progress"))
                    rank = (tableau_index, prefix_index, position)
                    if beacon is not None and beacon.superseded(rank):
                        return _outcome("superseded")
                    if governor is not None:
                        governor.tick("valuations")
                    examined += 1
                    summary = tableau.summary_under(valuation)
                    if summary in answers:
                        consumed += 1
                        continue
                    delta = tableau.instantiate(valuation)
                    constraint_checks += 1
                    if not other_constraints:
                        satisfied = True
                    elif context is not None:
                        satisfied = satisfies_all_extension(
                            database, delta, master, other_constraints,
                            context=context)
                    else:
                        candidate = extend_unvalidated(database, delta)
                        satisfied = satisfies_all(candidate, master,
                                                  other_constraints)
                    if satisfied:
                        if beacon is not None:
                            beacon.offer(rank)
                        return _outcome(
                            "witness", rank=rank,
                            data=(tuple(delta), summary,
                                  tableau.query.name))
                    consumed += 1
    except ExecutionInterrupted as interrupt:
        return _outcome("exhausted", reason=interrupt.reason)
    return _outcome("complete")


# ---------------------------------------------------------------------------
# Missing answers: one shard of the same enumeration, no early exit
# ---------------------------------------------------------------------------


def _run_missing(task: ShardTask, beacon: WitnessBeacon | None,
                 governor: Any, beat: "_Beat | None" = None) -> ShardOutcome:
    from repro.core.rcdp import _prepare_search, split_ind_constraints

    p = task.payload
    query, database = p["query"], p["database"]
    master, constraints = p["master"], p["constraints"]
    limit = p["limit"]
    shard = task.shard
    context, engine_base = _worker_context(task)

    tableaux, adom = _prepare_search(query, database, master, constraints,
                                     context)
    answers = (context.evaluate(query, database) if context is not None
               else query.evaluate(database))
    row_filter, other_constraints = split_ind_constraints(
        constraints, master, context=context)

    skip = shard.skip
    consumed = shard.skip
    examined = 0
    constraint_checks = 0
    # summary -> rank of its first occurrence in this shard's stream; the
    # parent merges these per-summary minima across shards, which is the
    # global first-occurrence rank.
    found: dict[tuple, tuple[int, ...]] = {}

    def _stats() -> SearchStatistics:
        return SearchStatistics(
            valuations_examined=examined,
            constraint_checks=constraint_checks,
        ).merged(_engine_delta(context, engine_base))

    def _outcome(kind: str, **extra: Any) -> ShardOutcome:
        pairs = tuple((rank, summary) for summary, rank in found.items())
        return ShardOutcome(index=shard.index, kind=kind, consumed=consumed,
                            data=pairs, statistics=_stats(),
                            ticks=_ledger(governor), **extra)

    governed = (context.governed(governor) if context is not None
                else nullcontext())
    try:
        with governed:
            for tableau_index, tableau in enumerate(tableaux):
                if not tableau.satisfiable:
                    continue
                for prefix_index, position, valuation in \
                        iter_sharded_valuations(
                            tableau, adom, shard_index=shard.index,
                            shard_count=shard.count, fresh="own",
                            row_filter=row_filter):
                    if skip > 0:
                        skip -= 1
                        continue
                    if beat is not None and beat.due:
                        beat.publish(_outcome("progress"))
                    if governor is not None:
                        governor.tick("valuations")
                    examined += 1
                    consumed += 1
                    summary = tableau.summary_under(valuation)
                    if summary in answers or summary in found:
                        continue
                    if other_constraints:
                        constraint_checks += 1
                        delta = tableau.instantiate(valuation)
                        if context is not None:
                            if not satisfies_all_extension(
                                    database, delta, master,
                                    other_constraints, context=context):
                                continue
                        else:
                            candidate = extend_unvalidated(database, delta)
                            if not satisfies_all(candidate, master,
                                                 other_constraints):
                                continue
                    found[summary] = (tableau_index, prefix_index, position)
                    if limit is not None and len(found) >= limit:
                        # Any later find in this shard has a larger rank
                        # than all of these, so it cannot displace them
                        # from the global rank-ordered top-`limit`.
                        return _outcome("complete")
    except ExecutionInterrupted as interrupt:
        return _outcome("exhausted", reason=interrupt.reason)
    return _outcome("complete")


# ---------------------------------------------------------------------------
# Brute-force RCDP: one shard of the extension-set enumeration
# ---------------------------------------------------------------------------


def _run_brute_rcdp(task: ShardTask, beacon: WitnessBeacon | None,
                    governor: Any,
                    beat: "_Beat | None" = None) -> ShardOutcome:
    import itertools

    from repro.core.bounded import candidate_fact_pool

    p = task.payload
    query, database = p["query"], p["database"]
    master, constraints = p["master"], p["constraints"]
    max_extra_facts = p["max_extra_facts"]
    values, relations = p["values"], p["relations"]
    shard = task.shard
    context, engine_base = _worker_context(task)

    baseline = (context.evaluate(query, database) if context is not None
                else query.evaluate(database))
    existing = set(database.facts())
    pool = [fact for fact in candidate_fact_pool(database.schema, values,
                                                 relations=relations)
            if fact not in existing]

    skip = shard.skip
    consumed = shard.skip
    examined = 0
    checks = 0

    def _stats() -> SearchStatistics:
        return SearchStatistics(
            valuations_examined=examined, constraint_checks=checks,
        ).merged(_engine_delta(context, engine_base))

    def _outcome(kind: str, **extra: Any) -> ShardOutcome:
        return ShardOutcome(index=shard.index, kind=kind, consumed=consumed,
                            statistics=_stats(), ticks=_ledger(governor),
                            **extra)

    governed = (context.governed(governor) if context is not None
                else nullcontext())
    flat = -1
    try:
        with governed:
            for size in range(1, max_extra_facts + 1):
                for combo in itertools.combinations(pool, size):
                    flat += 1
                    if not shard.owns(flat):
                        continue
                    if skip > 0:
                        skip -= 1
                        continue
                    if beat is not None and beat.due:
                        beat.publish(_outcome("progress"))
                    rank = (flat,)
                    if beacon is not None and beacon.superseded(rank):
                        return _outcome("superseded")
                    if governor is not None:
                        governor.tick("extensions")
                    examined += 1
                    delta = list(combo)
                    checks += 1
                    if context is not None:
                        compatible = satisfies_all_extension(
                            database, delta, master, constraints,
                            context=context)
                        extended_answers = (
                            context.evaluate_extension(query, database,
                                                       delta)
                            if compatible else None)
                    else:
                        extended = extend_unvalidated(database, delta)
                        compatible = satisfies_all(extended, master,
                                                   constraints)
                        extended_answers = (query.evaluate(extended)
                                            if compatible else None)
                    if compatible and extended_answers != baseline:
                        new_answers = extended_answers - baseline
                        answer = (next(iter(new_answers)) if new_answers
                                  else ())
                        if beacon is not None:
                            beacon.offer(rank)
                        return _outcome("witness", rank=rank,
                                        data=(tuple(combo), answer, size))
                    consumed += 1
    except ExecutionInterrupted as interrupt:
        return _outcome("exhausted", reason=interrupt.reason)
    return _outcome("complete")


# ---------------------------------------------------------------------------
# Brute-force RCQP: one shard of the candidate-database enumeration
# ---------------------------------------------------------------------------


def _run_brute_rcqp(task: ShardTask, beacon: WitnessBeacon | None,
                    governor: Any,
                    beat: "_Beat | None" = None) -> ShardOutcome:
    import itertools

    from repro.core.bounded import brute_force_rcdp, candidate_fact_pool
    from repro.core.rcdp import decide_rcdp

    p = task.payload
    query, master = p["query"], p["master"]
    constraints, schema = p["constraints"], p["schema"]
    max_database_size = p["max_database_size"]
    values = p["values"]
    completeness_bound = p["completeness_bound"]
    decidable = p["decidable"]
    shard = task.shard
    context, engine_base = _worker_context(task)

    pool = candidate_fact_pool(schema, values)
    empty = Instance.empty(schema)

    skip = shard.skip
    consumed = shard.skip
    examined = 0

    def _stats() -> SearchStatistics:
        return SearchStatistics(
            candidate_sets_examined=examined,
        ).merged(_engine_delta(context, engine_base))

    def _outcome(kind: str, **extra: Any) -> ShardOutcome:
        return ShardOutcome(index=shard.index, kind=kind, consumed=consumed,
                            statistics=_stats(), ticks=_ledger(governor),
                            **extra)

    governed = (context.governed(governor) if context is not None
                else nullcontext())
    flat = -1
    try:
        with governed:
            for size in range(0, max_database_size + 1):
                for combo in itertools.combinations(pool, size):
                    flat += 1
                    if not shard.owns(flat):
                        continue
                    if skip > 0:
                        skip -= 1
                        continue
                    if beat is not None and beat.due:
                        beat.publish(_outcome("progress"))
                    rank = (flat,)
                    if beacon is not None and beacon.superseded(rank):
                        return _outcome("superseded")
                    if governor is not None:
                        governor.tick("candidates")
                    examined += 1
                    combo_facts = list(combo)
                    if context is not None:
                        compatible = satisfies_all_extension(
                            empty, combo_facts, master, constraints,
                            context=context)
                    else:
                        candidate = extend_unvalidated(empty, combo_facts)
                        compatible = satisfies_all(candidate, master,
                                                   constraints)
                    if not compatible:
                        consumed += 1
                        continue
                    if context is not None:
                        candidate = extend_unvalidated(empty, combo_facts)
                    if decidable:
                        verdict = decide_rcdp(
                            query, candidate, master, constraints,
                            check_partially_closed=False,
                            governor=governor, context=context,
                            use_engine=context is not None)
                        sound = verdict.status is RCDPStatus.COMPLETE
                    else:
                        verdict = brute_force_rcdp(
                            query, candidate, master, constraints,
                            max_extra_facts=completeness_bound,
                            values=values, check_partially_closed=False,
                            governor=governor, context=context,
                            use_engine=context is not None)
                        sound = (verdict.status
                                 is RCDPStatus.COMPLETE_UP_TO_BOUND)
                    if sound:
                        if beacon is not None:
                            beacon.offer(rank)
                        return _outcome("witness", rank=rank,
                                        data=(candidate, size))
                    consumed += 1
    except ExecutionInterrupted as interrupt:
        return _outcome("exhausted", reason=interrupt.reason)
    return _outcome("complete")


# ---------------------------------------------------------------------------
# RCQP general search: one shard of the candidate-set enumeration
# ---------------------------------------------------------------------------


def _rcqp_search_space(p: dict[str, Any]) -> tuple[Any, Any, ActiveDomain]:
    """Rebuild (q_tableaux, cc_tableaux, adom) exactly as ``decide_rcqp``
    does; the deterministic construction reproduces the parent's fresh-
    value labels, so pickled :class:`~repro.core.rcqp.ValuationUnit`
    facts compare equal against worker-built valuations."""
    from repro.core.rcqp import _constraint_tableaux, _query_tableaux

    query, constraints, schema = p["query"], p["constraints"], p["schema"]
    q_tableaux = _query_tableaux(query, schema)
    cc_tableaux = _constraint_tableaux(constraints, schema)
    adom = ActiveDomain.build(
        instances=(p["master"],),
        queries=[query] + [c.query for c in constraints],
        tableaux=list(q_tableaux) + cc_tableaux)
    return q_tableaux, cc_tableaux, adom


def _run_rcqp_sets(task: ShardTask, beacon: WitnessBeacon | None,
                   governor: Any,
                   beat: "_Beat | None" = None) -> ShardOutcome:
    import itertools

    from repro.core.rcdp import decide_rcdp
    from repro.core.rcqp import _candidate_is_bounding, _facts_instance
    from repro.core.witness import make_complete

    p = task.payload
    query, master = p["query"], p["master"]
    constraints, schema = p["constraints"], p["schema"]
    units = p["units"]
    max_size = p["max_size"]
    shard = task.shard
    context, engine_base = _worker_context(task)

    q_tableaux, _, adom = _rcqp_search_space(p)
    ground_rows: list[Fact] = [
        (row.relation, row.instantiate({}))
        for tableau in q_tableaux for row in tableau.ground_rows()]

    skip = shard.skip
    consumed = shard.skip
    examined = 0

    def _stats() -> SearchStatistics:
        return SearchStatistics(
            candidate_sets_examined=examined,
        ).merged(_engine_delta(context, engine_base))

    def _outcome(kind: str, **extra: Any) -> ShardOutcome:
        return ShardOutcome(index=shard.index, kind=kind, consumed=consumed,
                            statistics=_stats(), ticks=_ledger(governor),
                            **extra)

    governed = (context.governed(governor) if context is not None
                else nullcontext())
    flat = -1
    try:
        with governed:
            for size in range(0, max_size + 1):
                for combo in itertools.combinations(units, size):
                    flat += 1
                    if not shard.owns(flat):
                        continue
                    if skip > 0:
                        skip -= 1
                        continue
                    if beat is not None and beat.due:
                        beat.publish(_outcome("progress"))
                    rank = (flat,)
                    if beacon is not None and beacon.superseded(rank):
                        return _outcome("superseded")
                    if governor is not None:
                        governor.tick("candidate_sets")
                    examined += 1
                    dv_facts = frozenset().union(*(u.facts for u in combo)) \
                        if combo else frozenset()
                    bound_values = frozenset().union(
                        *(u.summary_values for u in combo)) \
                        if combo else frozenset()
                    if not _candidate_is_bounding(
                            schema, master, constraints, q_tableaux, adom,
                            dv_facts, bound_values, governor=governor,
                            context=context):
                        consumed += 1
                        continue
                    witness = _facts_instance(
                        schema, list(dv_facts) + ground_rows)
                    if not satisfies_all(witness, master, constraints,
                                         context=context):
                        consumed += 1
                        continue
                    outcome = make_complete(
                        query, witness, master, constraints,
                        max_rounds=p["max_completion_rounds"],
                        governor=governor, on_exhausted="error",
                        context=context, use_engine=context is not None)
                    if not outcome.complete:
                        consumed += 1
                        continue
                    if p["verify_witness"]:
                        verdict = decide_rcdp(
                            query, outcome.database, master, constraints,
                            governor=governor, context=context,
                            use_engine=context is not None)
                        if verdict.status is not RCDPStatus.COMPLETE:
                            consumed += 1
                            continue
                    if beacon is not None:
                        beacon.offer(rank)
                    return _outcome("witness", rank=rank,
                                    data=(outcome.database, size))
    except ExecutionInterrupted as interrupt:
        return _outcome("exhausted", reason=interrupt.reason)
    return _outcome("complete")


# ---------------------------------------------------------------------------
# RCQP with INDs: sharded relevance scan and witness build for one tableau
# ---------------------------------------------------------------------------


def _run_inds_scan(task: ShardTask, beacon: WitnessBeacon | None,
                   governor: Any,
                   beat: "_Beat | None" = None) -> ShardOutcome:
    """Phase-0 shard: does *this* tableau admit a constraint-compatible
    valid valuation?  First find wins (existential — any find proves
    relevance, the beacon lets sibling shards stop)."""
    from repro.core.rcqp import _facts_instance, _query_tableaux

    p = task.payload
    query, master = p["query"], p["master"]
    constraints, schema = p["constraints"], p["schema"]
    shard = task.shard
    context, engine_base = _worker_context(task)

    tableaux = _query_tableaux(query, schema)
    adom = ActiveDomain.build(
        instances=(master,),
        queries=[query] + [c.query for c in constraints],
        tableaux=tableaux)
    tableau = tableaux[p["tableau_index"]]
    empty_base = Instance.empty(schema)

    skip = shard.skip
    consumed = shard.skip
    examined = 0

    def _stats() -> SearchStatistics:
        return SearchStatistics(
            valuations_examined=examined,
        ).merged(_engine_delta(context, engine_base))

    def _outcome(kind: str, **extra: Any) -> ShardOutcome:
        return ShardOutcome(index=shard.index, kind=kind, consumed=consumed,
                            statistics=_stats(), ticks=_ledger(governor),
                            **extra)

    governed = (context.governed(governor) if context is not None
                else nullcontext())
    try:
        with governed:
            for prefix_index, position, valuation in \
                    iter_sharded_valuations(
                        tableau, adom, shard_index=shard.index,
                        shard_count=shard.count, fresh="own"):
                if skip > 0:
                    skip -= 1
                    continue
                if beat is not None and beat.due:
                    beat.publish(_outcome("progress"))
                rank = (prefix_index, position)
                if beacon is not None and beacon.superseded(rank):
                    return _outcome("superseded")
                if governor is not None:
                    governor.tick("valuations")
                examined += 1
                delta = tableau.instantiate(valuation)
                if context is not None:
                    compatible = satisfies_all_extension(
                        empty_base, delta, master, constraints,
                        context=context)
                else:
                    compatible = satisfies_all(
                        _facts_instance(schema, delta), master, constraints)
                if compatible:
                    if beacon is not None:
                        beacon.offer(rank)
                    return _outcome("witness", rank=rank, data=True)
                consumed += 1
    except ExecutionInterrupted as interrupt:
        return _outcome("exhausted", reason=interrupt.reason)
    return _outcome("complete")


def _run_inds_build(task: ShardTask, beacon: WitnessBeacon | None,
                    governor: Any,
                    beat: "_Beat | None" = None) -> ShardOutcome:
    """Phase-1 shard: collect, per output summary, the shard's first
    constraint-compatible instantiation of one tableau.  Full scan — the
    parent merges per-summary rank minima across shards."""
    from repro.core.rcqp import _facts_instance, _query_tableaux

    p = task.payload
    query, master = p["query"], p["master"]
    constraints, schema = p["constraints"], p["schema"]
    shard = task.shard
    context, engine_base = _worker_context(task)

    tableaux = _query_tableaux(query, schema)
    adom = ActiveDomain.build(
        instances=(master,),
        queries=[query] + [c.query for c in constraints],
        tableaux=tableaux)
    tableau = tableaux[p["tableau_index"]]
    empty_base = Instance.empty(schema)

    skip = shard.skip
    consumed = shard.skip
    examined = 0
    # summary -> (rank, delta facts) for the shard-first *compatible*
    # instantiation; incompatible occurrences leave the summary open,
    # exactly like the serial `covered` set.
    covered: dict[tuple, tuple[tuple[int, ...], tuple[Fact, ...]]] = {}

    def _stats() -> SearchStatistics:
        return SearchStatistics(
            valuations_examined=examined,
        ).merged(_engine_delta(context, engine_base))

    def _outcome(kind: str, **extra: Any) -> ShardOutcome:
        pairs = tuple((rank, summary, delta)
                      for summary, (rank, delta) in covered.items())
        return ShardOutcome(index=shard.index, kind=kind, consumed=consumed,
                            data=pairs, statistics=_stats(),
                            ticks=_ledger(governor), **extra)

    governed = (context.governed(governor) if context is not None
                else nullcontext())
    try:
        with governed:
            for prefix_index, position, valuation in \
                    iter_sharded_valuations(
                        tableau, adom, shard_index=shard.index,
                        shard_count=shard.count, fresh="own"):
                if skip > 0:
                    skip -= 1
                    continue
                if beat is not None and beat.due:
                    beat.publish(_outcome("progress"))
                if governor is not None:
                    governor.tick("valuations")
                examined += 1
                consumed += 1
                summary = tableau.summary_under(valuation)
                if summary in covered:
                    continue
                delta = tableau.instantiate(valuation)
                if context is not None:
                    compatible = satisfies_all_extension(
                        empty_base, delta, master, constraints,
                        context=context)
                else:
                    compatible = satisfies_all(
                        _facts_instance(schema, delta), master, constraints)
                if compatible:
                    covered[summary] = ((prefix_index, position),
                                        tuple(delta))
    except ExecutionInterrupted as interrupt:
        return _outcome("exhausted", reason=interrupt.reason)
    return _outcome("complete")


_RUNNERS = {
    "rcdp": _run_rcdp,
    "missing": _run_missing,
    "brute-rcdp": _run_brute_rcdp,
    "brute-rcqp": _run_brute_rcqp,
    "rcqp-sets": _run_rcqp_sets,
    "inds-scan": _run_inds_scan,
    "inds-build": _run_inds_build,
}


def shard_entry(task: ShardTask, beacon: WitnessBeacon | None,
                cancel_event: Any, queue: Any,
                heartbeat: float | None = None, attempt: int = 0) -> None:
    """Process entry point: run the task's shard, report one outcome.

    Under supervision, *heartbeat* sets the progress-snapshot interval
    and *attempt* stamps every message, so the supervisor can discard
    stragglers from attempts it already gave up on.  The worker also
    honors the injector's ``outcome_drop`` fault here: the final
    outcome is silently discarded, simulating a report lost in flight.
    """
    governor = None
    beat = None
    try:
        governor = materialize_governor(task.governor, cancel_event)
        if heartbeat is not None and heartbeat > 0:
            beat = _Beat(queue, heartbeat, attempt)
        observation = obs_of(governor)
        with obs_span(observation, "shard", kind=task.kind,
                      index=task.shard.index, attempt=attempt):
            outcome = _RUNNERS[task.kind](task, beacon, governor, beat)
        if observation is not None:
            outcome.obs = observation.payload()
    except BaseException:
        outcome = ShardOutcome(index=task.shard.index, kind="error",
                               error=traceback.format_exc())
    finally:
        if beat is not None:
            beat.stop()
    outcome.attempt = attempt
    faults = governor.faults if governor is not None else None
    if faults is not None and faults.should_drop_outcome():
        return
    try:
        queue.put(outcome)
    except BaseException:  # pragma: no cover - queue teardown race
        os._exit(1)
