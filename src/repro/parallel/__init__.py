"""Parallel execution of the exact search procedures.

The deciders in :mod:`repro.core` enumerate deterministic,
``Adom``-bounded search spaces — candidate valuations, extension sets,
candidate databases, valuation-unit sets.  This package shards those
enumerations across a ``multiprocessing`` worker pool without changing
any verdict:

* :mod:`~repro.parallel.partition` — deterministic shard ownership,
  governor splitting, and parallel checkpoint state;
* :mod:`~repro.parallel.beacon` — the shared early-exit signal that
  carries the best witness rank found so far;
* :mod:`~repro.parallel.worker` — shard-local images of the serial
  search loops;
* :mod:`~repro.parallel.supervise` — the fault-tolerant supervisor:
  heartbeat liveness, checkpoint-based retry, poison-shard quarantine;
* :mod:`~repro.parallel.pool` — the fan-out/fan-in process driver;
* :mod:`~repro.parallel.api` — the parent-side front-ends the serial
  deciders delegate to when ``workers > 1``.

Users normally never import this package: every decider and the CLI
expose a ``workers=`` / ``--workers`` knob (1 = serial, 0 = all cores).
See ``docs/PARALLEL.md`` for the sharding model and its determinism
proof obligations.
"""

from repro.parallel.api import (brute_force_rcdp_parallel,
                                brute_force_rcqp_parallel,
                                decide_rcdp_parallel,
                                decide_rcqp_parallel,
                                decide_rcqp_with_inds_parallel,
                                missing_answers_parallel)
from repro.parallel.beacon import WitnessBeacon
from repro.parallel.partition import (EventCancellation, GovernorSpec,
                                      ShardSpec, materialize_governor,
                                      resolve_workers, split_governor,
                                      suggest_workers)
from repro.parallel.pool import merged_ticks, run_shards
from repro.parallel.supervise import ShardSupervisor
from repro.parallel.worker import ShardOutcome, ShardTask

__all__ = [
    "decide_rcdp_parallel",
    "missing_answers_parallel",
    "brute_force_rcdp_parallel",
    "brute_force_rcqp_parallel",
    "decide_rcqp_parallel",
    "decide_rcqp_with_inds_parallel",
    "resolve_workers",
    "suggest_workers",
    "split_governor",
    "materialize_governor",
    "ShardSpec",
    "GovernorSpec",
    "EventCancellation",
    "ShardTask",
    "ShardOutcome",
    "ShardSupervisor",
    "WitnessBeacon",
    "run_shards",
    "merged_ticks",
]
