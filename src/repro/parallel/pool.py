"""The worker-pool driver: spawn shards, collect outcomes, reconcile.

One :func:`run_shards` call is one fan-out/fan-in round: every
:class:`~repro.parallel.worker.ShardTask` becomes a worker process (a
shard already marked ``done`` by a resumed checkpoint is answered
inline), outcomes stream back over a queue, and the parent reconciles
one outcome per shard, in shard order.

Since the supervision layer landed, the pool is fault tolerant by
default: the collection loop lives in
:class:`~repro.parallel.supervise.ShardSupervisor`, which detects dead
or silent workers via heartbeat progress snapshots, respawns failed
shards from their last snapshot cursor under the governing
:class:`~repro.runtime.RetryPolicy`, and quarantines poison shards to
an in-process serial re-run — see ``docs/PARALLEL.md`` ("Fault
tolerance").  ``RetryPolicy.disabled()`` restores the legacy fail-fast
behavior, where any worker death raises
:class:`~repro.errors.WorkerPoolError`.

``fork`` is the preferred start method (cheap, inherits the prepared
objects); every task and outcome is nevertheless fully picklable, so
the ``spawn`` fallback works where ``fork`` is unavailable, and the
``REPRO_PARALLEL_START_METHOD`` environment variable forces a specific
method (the CI exercises ``spawn`` explicitly).
"""

from __future__ import annotations

from typing import Sequence

from repro.parallel.supervise import ShardSupervisor
from repro.parallel.worker import ShardOutcome, ShardTask
from repro.runtime import ExecutionGovernor, RetryPolicy

__all__ = ["run_shards", "merged_ticks"]


def run_shards(tasks: Sequence[ShardTask],
               *, governor: ExecutionGovernor | None = None,
               use_beacon: bool = True,
               retry: RetryPolicy | None = None) -> list[ShardOutcome]:
    """Run every task in its own worker process; return outcomes in
    shard order.

    Worker death is recoverable: failed shards are retried from their
    last progress snapshot and, past the retry budget, quarantined to
    an in-process serial re-run, so the returned outcomes always cover
    the full union of shard slices.  *retry* overrides the policy; by
    default the parent governor's ``retry`` slot applies, falling back
    to ``RetryPolicy()``.  Only unrecovered failures — a worker that
    *reported* an unexpected exception, or any death under a disabled
    policy — raise :class:`~repro.errors.WorkerPoolError`, with the
    worker details attached.
    """
    supervisor = ShardSupervisor(tasks, governor=governor,
                                 use_beacon=use_beacon, retry=retry)
    return supervisor.run()


def merged_ticks(outcomes: Sequence[ShardOutcome]) -> dict[str, int]:
    """Sum the per-kind budget-ledger snapshots of all outcomes, for
    :meth:`~repro.runtime.governor.ExecutionGovernor.absorb`."""
    totals: dict[str, int] = {}
    for outcome in outcomes:
        for kind, amount in outcome.ticks.items():
            totals[kind] = totals.get(kind, 0) + amount
    return totals
