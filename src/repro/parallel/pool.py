"""The worker-pool driver: spawn shards, collect outcomes, reconcile.

One :func:`run_shards` call is one fan-out/fan-in round: every
:class:`~repro.parallel.worker.ShardTask` becomes a worker process (a
shard already marked ``done`` by a resumed checkpoint is answered
inline), outcomes stream back over a queue, and the parent

* propagates its own governor's cancellation token into the shared
  event the worker governors watch,
* synthesizes an ``"error"`` outcome for any worker that dies without
  reporting (crash, OOM kill), so the pool can never hang on a dead
  child, and
* on return hands the caller one outcome per shard, in shard order.

``fork`` is the preferred start method (cheap, inherits the prepared
objects); every task and outcome is nevertheless fully picklable, so
the ``spawn`` fallback works where ``fork`` is unavailable.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from typing import Sequence

from repro.errors import ReproError
from repro.parallel.beacon import WitnessBeacon
from repro.parallel.worker import ShardOutcome, ShardTask, shard_entry
from repro.runtime import ExecutionGovernor

__all__ = ["run_shards", "merged_ticks"]

#: Grace period before a dead, silent worker is declared lost.
_DEAD_WORKER_GRACE = 1.0


def _mp_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_shards(tasks: Sequence[ShardTask],
               *, governor: ExecutionGovernor | None = None,
               use_beacon: bool = True) -> list[ShardOutcome]:
    """Run every task in its own worker process; return outcomes in
    shard order.

    Worker failures come back as ``"error"`` outcomes and raise
    :class:`~repro.errors.ReproError` here, with the worker tracebacks
    attached — a crashed worker means an unscanned slice of the search
    space, so no sound verdict can be assembled from the rest.
    """
    ctx = _mp_context()
    beacon = WitnessBeacon(ctx) if use_beacon else None
    cancel_event = ctx.Event()
    outcome_queue = ctx.Queue()
    outcomes: dict[int, ShardOutcome] = {}
    processes: dict[int, multiprocessing.process.BaseProcess] = {}

    for task in tasks:
        if task.shard.done:
            # Fully scanned before the interruption; nothing left to run.
            outcomes[task.shard.index] = ShardOutcome(
                index=task.shard.index, kind="complete",
                consumed=task.shard.skip)
            continue
        processes[task.shard.index] = ctx.Process(
            target=shard_entry,
            args=(task, beacon, cancel_event, outcome_queue),
            daemon=True)

    for process in processes.values():
        process.start()

    grace: dict[int, float] = {}
    try:
        while len(outcomes) < len(tasks):
            if (governor is not None and governor.cancellation is not None
                    and governor.cancellation.cancelled):
                cancel_event.set()
            try:
                outcome = outcome_queue.get(timeout=0.05)
            except queue_module.Empty:
                for index, process in processes.items():
                    if index in outcomes or process.is_alive():
                        continue
                    deadline = grace.setdefault(
                        index, time.monotonic() + _DEAD_WORKER_GRACE)
                    if time.monotonic() >= deadline:
                        outcomes[index] = ShardOutcome(
                            index=index, kind="error",
                            error=(f"worker {index} exited with code "
                                   f"{process.exitcode} before reporting "
                                   f"a result"))
                continue
            outcomes[outcome.index] = outcome
    finally:
        for process in processes.values():
            if process.is_alive():
                process.join(timeout=2.0)
            if process.is_alive():
                cancel_event.set()
                process.terminate()
                process.join(timeout=2.0)
        outcome_queue.close()

    errors = [o for o in outcomes.values() if o.kind == "error"]
    if errors:
        details = "\n".join(
            f"[shard {o.index}] {o.error}" for o in errors)
        raise ReproError(
            f"{len(errors)} of {len(tasks)} search worker(s) failed:\n"
            f"{details}")
    return [outcomes[task.shard.index] for task in tasks]


def merged_ticks(outcomes: Sequence[ShardOutcome]) -> dict[str, int]:
    """Sum the per-kind budget-ledger snapshots of all outcomes, for
    :meth:`~repro.runtime.governor.ExecutionGovernor.absorb`."""
    totals: dict[str, int] = {}
    for outcome in outcomes:
        for kind, amount in outcome.ticks.items():
            totals[kind] = totals.get(kind, 0) + amount
    return totals
