"""Wall-clock deadlines and cooperative cancellation.

Both are *cooperative*: nothing is preempted.  The hot enumeration loops
of the deciders and solvers call :meth:`ExecutionGovernor.tick`, which
consults these objects; a search only stops at a tick boundary, which is
exactly what makes the checkpoints it leaves behind resumable.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ReproError

__all__ = ["Deadline", "CancellationToken"]


class Deadline:
    """A point on the monotonic clock after which a search must stop."""

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = float(at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline *seconds* from now."""
        if seconds < 0:
            raise ReproError(
                f"deadline must be nonnegative, got {seconds}")
        return cls(time.monotonic() + seconds)

    def expired(self) -> bool:
        return time.monotonic() >= self.at

    def remaining(self) -> float:
        """Seconds left; 0.0 once expired."""
        return max(0.0, self.at - time.monotonic())

    def __repr__(self) -> str:
        return f"Deadline[{self.remaining():.3f}s left]"


class CancellationToken:
    """Thread-safe cooperative cancellation flag.

    A caller (another thread, a signal handler, a UI) calls
    :meth:`cancel`; the governed search observes it at its next tick and
    degrades gracefully, returning a checkpointed partial result rather
    than dying mid-loop.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        return f"CancellationToken[{'cancelled' if self.cancelled else 'live'}]"
