"""Resumable search checkpoints.

When a governed search is interrupted it does not discard its work: it
returns (or attaches to the raised error) a :class:`SearchCheckpoint`
recording exactly where the deterministic enumeration stopped.  Passing
the checkpoint back via the decider's ``resume_from`` parameter fast-
forwards the enumeration — skipped positions are *not* charged against
the new budget, since the original run already examined and rejected
them — and the search continues as if it had never stopped.

The cursor layout is procedure-specific (documented on each decider);
checkpoints are in-memory objects, valid for the *same* inputs within
the same process, not a serialization format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.results import SearchStatistics

__all__ = ["SearchCheckpoint"]


@dataclass(frozen=True)
class SearchCheckpoint:
    """Frontier of an interrupted search.

    Attributes
    ----------
    procedure:
        Which search produced it (``"rcdp"``, ``"missing"``, ``"rcqp"``,
        ``"rcqp-inds"``, ``"brute-rcdp"``, ``"brute-rcqp"``); deciders
        refuse checkpoints from a different procedure.
    cursor:
        Procedure-specific enumeration position.
    statistics:
        :class:`~repro.core.results.SearchStatistics` accumulated up to
        the interruption; resumed runs report cumulative totals.
    payload:
        Partial data carried across the interruption (e.g. the missing
        answers found so far), procedure-specific.
    """

    procedure: str
    cursor: tuple[int, ...]
    statistics: "SearchStatistics | None" = None
    payload: tuple = field(default_factory=tuple)

    def require(self, procedure: str) -> "SearchCheckpoint":
        """Return self after asserting it came from *procedure*."""
        if self.procedure != procedure:
            raise ReproError(
                f"checkpoint from {self.procedure!r} cannot resume a "
                f"{procedure!r} search")
        return self

    def base_statistics(self) -> Any:
        """The accumulated statistics, or fresh zeros when absent."""
        if self.statistics is not None:
            return self.statistics
        from repro.core.results import SearchStatistics

        return SearchStatistics()

    def __repr__(self) -> str:
        return (f"Checkpoint[{self.procedure} @ {self.cursor}"
                f"{', +payload' if self.payload else ''}]")
