"""Unified work accounting for the exact deciders.

Before the governor existed every search counted its own thing —
``decide_rcdp`` counted valuations, ``decide_rcqp`` counted candidate
"units", the brute-force oracles counted extension combos — and each cap
had its own ad-hoc kwarg.  :class:`Budget` replaces them with one ledger:
every unit of search work is a *tick* of some *kind* (``"valuations"``,
``"candidate_sets"``, ``"units"``, ``"nodes"``, ``"words"``, ...), charged
through a single :meth:`charge` call.  A budget can cap the grand total,
individual kinds, or both; per-kind counters are always kept so partial
results can report exactly how far each phase of a search got.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = ["Budget"]


class Budget:
    """A mutable ledger of search work with optional limits.

    Parameters
    ----------
    limit:
        Cap on the total ticks across all kinds; ``None`` means unlimited.
    **kind_limits:
        Optional per-kind caps, e.g. ``Budget(valuations=500)`` or
        ``Budget(limit=10_000, candidate_sets=100)``.

    A limit of ``n`` admits exactly ``n`` ticks: the charge that would
    make the count exceed ``n`` reports a breach (matching the historical
    ``examined > budget`` semantics of ``decide_rcdp``).
    """

    __slots__ = ("limit", "kind_limits", "spent", "_by_kind")

    def __init__(self, limit: int | None = None, **kind_limits: int) -> None:
        if limit is not None and limit < 0:
            raise ReproError(f"budget limit must be nonnegative, got {limit}")
        for kind, cap in kind_limits.items():
            if cap < 0:
                raise ReproError(
                    f"budget limit for {kind!r} must be nonnegative, "
                    f"got {cap}")
        self.limit = limit
        self.kind_limits = dict(kind_limits)
        self.spent = 0
        self._by_kind: dict[str, int] = {}

    def charge(self, kind: str = "work", amount: int = 1) -> str | None:
        """Record *amount* ticks of *kind*; return the breached limit name.

        Returns ``None`` while within budget, ``"total"`` when the global
        limit is exceeded, or the kind name when a per-kind limit is.  The
        ledger keeps counting after a breach, so repeated charges keep
        reporting it — exhaustion is sticky.
        """
        self.spent += amount
        count = self._by_kind.get(kind, 0) + amount
        self._by_kind[kind] = count
        if self.limit is not None and self.spent > self.limit:
            return "total"
        cap = self.kind_limits.get(kind)
        if cap is not None and count > cap:
            return kind
        return None

    def spent_for(self, kind: str) -> int:
        """Ticks charged so far under *kind*."""
        return self._by_kind.get(kind, 0)

    @property
    def exhausted(self) -> bool:
        """True once any limit has been breached."""
        if self.limit is not None and self.spent > self.limit:
            return True
        return any(self._by_kind.get(kind, 0) > cap
                   for kind, cap in self.kind_limits.items())

    @property
    def remaining(self) -> int | None:
        """Ticks left under the total limit (``None`` when unlimited)."""
        if self.limit is None:
            return None
        return max(0, self.limit - self.spent)

    def snapshot(self) -> dict[str, int]:
        """Per-kind counters, for statistics and logging."""
        return dict(self._by_kind)

    def __repr__(self) -> str:
        total = "∞" if self.limit is None else str(self.limit)
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(
            self._by_kind.items()))
        return f"Budget[{self.spent}/{total}{'; ' + kinds if kinds else ''}]"
