"""Execution governor: budgets, deadlines, degradation, fault injection.

The problems this library decides are Πᵖ₂- to NEXPTIME-complete, so every
exact search needs to be *boundable* and *interruptible* without throwing
away the work it has done.  This package provides the machinery:

* :class:`~repro.runtime.budget.Budget` — unified work accounting across
  valuations, candidate sets, units, solver nodes, ...;
* :class:`~repro.runtime.control.Deadline` /
  :class:`~repro.runtime.control.CancellationToken` — wall-clock limits
  and cooperative cancellation;
* :class:`~repro.runtime.governor.ExecutionGovernor` — the single object
  threaded through every hot loop;
* :class:`~repro.runtime.checkpoint.SearchCheckpoint` — resumable search
  frontiers for graceful degradation;
* :class:`~repro.runtime.faults.FaultInjector` — deterministic, seedable
  fault injection (including process-level worker faults) so the
  degradation paths are themselves testable;
* :class:`~repro.runtime.retry.RetryPolicy` — how the parallel shard
  supervisor retries, backs off, and quarantines failed workers.

See ``docs/RUNTIME.md`` for the full story.
"""

from repro.runtime.budget import Budget
from repro.runtime.checkpoint import SearchCheckpoint
from repro.runtime.control import CancellationToken, Deadline
from repro.runtime.faults import CRASH_EXIT_CODE, FaultInjector
from repro.runtime.governor import (EXHAUSTION_MODES, ExecutionGovernor,
                                    resolve_governor,
                                    validate_exhaustion_mode)
from repro.runtime.retry import POISON_MODES, RetryPolicy

__all__ = [
    "Budget",
    "CRASH_EXIT_CODE",
    "CancellationToken",
    "Deadline",
    "EXHAUSTION_MODES",
    "ExecutionGovernor",
    "FaultInjector",
    "POISON_MODES",
    "RetryPolicy",
    "SearchCheckpoint",
    "resolve_governor",
    "validate_exhaustion_mode",
]
