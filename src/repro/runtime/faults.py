"""Deterministic, seedable fault injection for the execution governor.

The graceful-degradation paths (exhaustion, deadline expiry, cooperative
cancellation) are the hardest code in the library to exercise naturally:
a real budget trip depends on instance size, a real deadline on machine
speed.  :class:`FaultInjector` makes them reproducible — it rides on the
governor's tick stream and *simulates* each stop condition at an exact,
configurable tick, or probabilistically under a fixed seed.  An injected
fault is deliberately indistinguishable from the real condition (same
reason string, same exception, same checkpoint machinery), so the tests
that exercise degradation exercise the production paths.
"""

from __future__ import annotations

import random
import time

from repro.errors import ReproError

__all__ = ["FaultInjector"]

_REASONS = ("budget", "deadline", "cancelled")


class FaultInjector:
    """Injects stop conditions and delays into a governed search.

    Parameters
    ----------
    exhaust_after, deadline_after, cancel_after:
        Fire the corresponding stop condition once the global tick count
        reaches the given value (the Nth tick is the first one reported;
        ``exhaust_after=3`` lets 3 ticks of work complete).
    delay_every, delay_seconds:
        Sleep *delay_seconds* before every *delay_every*-th tick — for
        making deadline expiry reproducible without huge instances.
    exhaust_probability:
        Per-tick probability of simulated exhaustion, drawn from a
        private :class:`random.Random` seeded with *seed* — deterministic
        across runs for a fixed seed and tick stream.
    seed:
        Seed for the probabilistic faults (default 0).
    """

    __slots__ = ("exhaust_after", "deadline_after", "cancel_after",
                 "delay_every", "delay_seconds", "exhaust_probability",
                 "_rng", "ticks", "fired")

    def __init__(self, *, exhaust_after: int | None = None,
                 deadline_after: int | None = None,
                 cancel_after: int | None = None,
                 delay_every: int | None = None,
                 delay_seconds: float = 0.0,
                 exhaust_probability: float = 0.0,
                 seed: int = 0) -> None:
        for name, value in (("exhaust_after", exhaust_after),
                            ("deadline_after", deadline_after),
                            ("cancel_after", cancel_after)):
            if value is not None and value < 0:
                raise ReproError(f"{name} must be nonnegative, got {value}")
        if delay_every is not None and delay_every <= 0:
            raise ReproError(
                f"delay_every must be positive, got {delay_every}")
        if not 0.0 <= exhaust_probability <= 1.0:
            raise ReproError(
                f"exhaust_probability must be in [0, 1], "
                f"got {exhaust_probability}")
        self.exhaust_after = exhaust_after
        self.deadline_after = deadline_after
        self.cancel_after = cancel_after
        self.delay_every = delay_every
        self.delay_seconds = delay_seconds
        self.exhaust_probability = exhaust_probability
        self._rng = random.Random(seed)
        self.ticks = 0
        self.fired: str | None = None

    def before_work(self, amount: int = 1) -> str | None:
        """Advance the fault clock by *amount*; return a stop reason or None.

        Called by the governor before each unit of work is performed, so
        a fired fault means that unit was *not* examined — mirroring how
        a real budget breach stops the search before the over-budget
        step.  Once fired, the injector keeps reporting the same reason
        (faults are sticky, like real exhaustion).
        """
        if self.fired is not None:
            return self.fired
        self.ticks += amount
        if self.delay_every is not None and self.delay_seconds > 0 \
                and self.ticks % self.delay_every == 0:
            time.sleep(self.delay_seconds)
        if self.exhaust_after is not None and self.ticks > self.exhaust_after:
            self.fired = "budget"
        elif self.deadline_after is not None \
                and self.ticks > self.deadline_after:
            self.fired = "deadline"
        elif self.cancel_after is not None and self.ticks > self.cancel_after:
            self.fired = "cancelled"
        elif self.exhaust_probability > 0.0 \
                and self._rng.random() < self.exhaust_probability:
            self.fired = "budget"
        return self.fired

    def __repr__(self) -> str:
        state = f"fired={self.fired}" if self.fired else "armed"
        return f"FaultInjector[{state} @ tick {self.ticks}]"
