"""Deterministic, seedable fault injection for the execution governor.

The graceful-degradation paths (exhaustion, deadline expiry, cooperative
cancellation) are the hardest code in the library to exercise naturally:
a real budget trip depends on instance size, a real deadline on machine
speed.  :class:`FaultInjector` makes them reproducible — it rides on the
governor's tick stream and *simulates* each stop condition at an exact,
configurable tick, or probabilistically under a fixed seed.  An injected
fault is deliberately indistinguishable from the real condition (same
reason string, same exception, same checkpoint machinery), so the tests
that exercise degradation exercise the production paths.

Besides the cooperative stop conditions, the injector carries three
*process-level* fault kinds that exist to test the parallel shard
supervisor (:mod:`repro.parallel.supervise`):

* ``worker_crash`` — the process dies instantly (``os._exit``), as if
  OOM-killed, either at a fixed tick (``crash_after``) or per tick with
  probability ``crash_probability``;
* ``worker_hang`` — the process stops making progress but stays alive
  (``hang_after``), exercising heartbeat-based silence detection;
* ``outcome_drop`` — the worker completes but its final outcome is
  lost with probability ``drop_outcome``, as if the queue write never
  happened.

Process faults are inert until :meth:`arm_process_faults` is called —
which only :func:`~repro.parallel.partition.materialize_governor` does,
inside a worker process.  A serial run, a parent governor, or a
quarantined in-process re-run never crashes from them, which is what
guarantees a supervised search terminates even when every worker
attempt is doomed.
"""

from __future__ import annotations

import os
import random
import time

from repro.errors import ReproError

__all__ = ["FaultInjector"]

_REASONS = ("budget", "deadline", "cancelled")

#: Exit code used by an injected ``worker_crash`` — distinctive, so a
#: test (or a trace reader) can tell an injected crash from a real one.
CRASH_EXIT_CODE = 173


class FaultInjector:
    """Injects stop conditions and delays into a governed search.

    Parameters
    ----------
    exhaust_after, deadline_after, cancel_after:
        Fire the corresponding stop condition once the global tick count
        reaches the given value (the Nth tick is the first one reported;
        ``exhaust_after=3`` lets 3 ticks of work complete).
    delay_every, delay_seconds:
        Sleep *delay_seconds* before every *delay_every*-th tick — for
        making deadline expiry reproducible without huge instances.
    exhaust_probability:
        Per-tick probability of simulated exhaustion, drawn from a
        private :class:`random.Random` seeded with *seed* — deterministic
        across runs for a fixed seed and tick stream.
    crash_after, hang_after:
        Process faults (armed workers only): kill the process after the
        given tick count, or stop making progress while staying alive.
    crash_probability:
        Per-tick probability of an injected ``worker_crash`` (armed
        workers only), drawn from the same seeded stream.
    drop_outcome:
        Probability that an armed worker's final outcome is dropped
        instead of reported — the worker exits cleanly but silently.
    seed:
        Seed for the probabilistic faults (default 0).
    """

    __slots__ = ("exhaust_after", "deadline_after", "cancel_after",
                 "delay_every", "delay_seconds", "exhaust_probability",
                 "crash_after", "hang_after", "crash_probability",
                 "drop_outcome", "seed", "_rng", "ticks", "fired",
                 "process_armed")

    def __init__(self, *, exhaust_after: int | None = None,
                 deadline_after: int | None = None,
                 cancel_after: int | None = None,
                 delay_every: int | None = None,
                 delay_seconds: float = 0.0,
                 exhaust_probability: float = 0.0,
                 crash_after: int | None = None,
                 hang_after: int | None = None,
                 crash_probability: float = 0.0,
                 drop_outcome: float = 0.0,
                 seed: int = 0) -> None:
        for name, value in (("exhaust_after", exhaust_after),
                            ("deadline_after", deadline_after),
                            ("cancel_after", cancel_after),
                            ("crash_after", crash_after),
                            ("hang_after", hang_after)):
            if value is not None and value < 0:
                raise ReproError(f"{name} must be nonnegative, got {value}")
        if delay_every is not None and delay_every <= 0:
            raise ReproError(
                f"delay_every must be positive, got {delay_every}")
        for name, value in (("exhaust_probability", exhaust_probability),
                            ("crash_probability", crash_probability),
                            ("drop_outcome", drop_outcome)):
            if not 0.0 <= value <= 1.0:
                raise ReproError(
                    f"{name} must be in [0, 1], got {value}")
        self.exhaust_after = exhaust_after
        self.deadline_after = deadline_after
        self.cancel_after = cancel_after
        self.delay_every = delay_every
        self.delay_seconds = delay_seconds
        self.exhaust_probability = exhaust_probability
        self.crash_after = crash_after
        self.hang_after = hang_after
        self.crash_probability = crash_probability
        self.drop_outcome = drop_outcome
        self.seed = seed
        self._rng = random.Random(seed)
        self.ticks = 0
        self.fired: str | None = None
        self.process_armed = False

    def arm_process_faults(self) -> None:
        """Enable the process-level fault kinds.

        Called by ``materialize_governor`` inside a worker process —
        and deliberately *not* for a quarantined in-process re-run, so
        graceful degradation to serial can never be crashed by the
        faults that forced it.
        """
        self.process_armed = True

    def reseeded(self, offset: int) -> "FaultInjector":
        """A fresh copy (clocks reset, disarmed) with ``seed + offset``.

        The supervisor reseeds the injector per respawn attempt so a
        probabilistic crash schedule differs across attempts — with any
        per-attempt crash probability below 1 a retried shard can
        eventually get through.
        """
        return FaultInjector(
            exhaust_after=self.exhaust_after,
            deadline_after=self.deadline_after,
            cancel_after=self.cancel_after,
            delay_every=self.delay_every,
            delay_seconds=self.delay_seconds,
            exhaust_probability=self.exhaust_probability,
            crash_after=self.crash_after,
            hang_after=self.hang_after,
            crash_probability=self.crash_probability,
            drop_outcome=self.drop_outcome,
            seed=self.seed + offset)

    def before_work(self, amount: int = 1) -> str | None:
        """Advance the fault clock by *amount*; return a stop reason or None.

        Called by the governor before each unit of work is performed, so
        a fired fault means that unit was *not* examined — mirroring how
        a real budget breach stops the search before the over-budget
        step.  Once fired, the injector keeps reporting the same reason
        (faults are sticky, like real exhaustion).
        """
        if self.fired is not None:
            return self.fired
        self.ticks += amount
        if self.delay_every is not None and self.delay_seconds > 0 \
                and self.ticks % self.delay_every == 0:
            time.sleep(self.delay_seconds)
        if self.process_armed:
            self._process_fault()
        if self.exhaust_after is not None and self.ticks > self.exhaust_after:
            self.fired = "budget"
        elif self.deadline_after is not None \
                and self.ticks > self.deadline_after:
            self.fired = "deadline"
        elif self.cancel_after is not None and self.ticks > self.cancel_after:
            self.fired = "cancelled"
        elif self.exhaust_probability > 0.0 \
                and self._rng.random() < self.exhaust_probability:
            self.fired = "budget"
        return self.fired

    def _process_fault(self) -> None:
        if self.crash_after is not None and self.ticks > self.crash_after:
            os._exit(CRASH_EXIT_CODE)
        if self.hang_after is not None and self.ticks > self.hang_after:
            while True:  # stay alive, make no progress; killed by SIGTERM
                time.sleep(0.05)
        if self.crash_probability > 0.0 \
                and self._rng.random() < self.crash_probability:
            os._exit(CRASH_EXIT_CODE)

    def should_drop_outcome(self) -> bool:
        """Whether an armed worker's final outcome should be lost."""
        if not self.process_armed or self.drop_outcome <= 0.0:
            return False
        return self._rng.random() < self.drop_outcome

    def __repr__(self) -> str:
        state = f"fired={self.fired}" if self.fired else "armed"
        if self.process_armed:
            state += ", process faults live"
        return f"FaultInjector[{state} @ tick {self.ticks}]"
