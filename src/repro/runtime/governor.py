"""The execution governor: one cooperative control point for every search.

RCDP is Πᵖ₂-complete and RCQP is NEXPTIME-complete (Theorems 3.6 and
4.5), so every exact decider in this library is one adversarial input
away from hanging.  The governor is the single object threaded through
all the hot enumeration loops (``core/rcdp.py``, ``core/rcqp.py``,
``core/bounded.py`` and the four ``solvers/`` modules); each loop
iteration calls :meth:`ExecutionGovernor.tick`, which

* charges the unified :class:`~repro.runtime.budget.Budget`,
* checks the wall-clock :class:`~repro.runtime.control.Deadline`,
* observes the cooperative
  :class:`~repro.runtime.control.CancellationToken`, and
* consults the :class:`~repro.runtime.faults.FaultInjector`, if any,

raising :class:`~repro.errors.ExecutionInterrupted` the moment any of
them trips.  Deciders catch that exception and degrade gracefully: they
return an ``EXHAUSTED`` result carrying statistics and a resumable
:class:`~repro.runtime.checkpoint.SearchCheckpoint` (or re-raise with
those attached, in strict mode).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ExecutionInterrupted, ReproError
from repro.runtime.budget import Budget
from repro.runtime.control import CancellationToken, Deadline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.faults import FaultInjector
    from repro.runtime.retry import RetryPolicy

__all__ = ["ExecutionGovernor", "resolve_governor",
           "validate_exhaustion_mode", "EXHAUSTION_MODES"]

#: Valid values for the deciders' ``on_exhausted`` parameter.
EXHAUSTION_MODES = ("error", "partial")


class ExecutionGovernor:
    """Budget + deadline + cancellation + faults behind a single tick API.

    All components are optional; a governor with none of them is a pure
    tick counter (useful for instrumentation).  One governor instance may
    be shared across nested searches — e.g. ``decide_rcqp`` passes its
    governor into the ``decide_rcdp`` calls that verify candidate
    witnesses — so a single budget bounds the whole composite decision.
    """

    __slots__ = ("budget", "deadline", "cancellation", "faults", "ticks",
                 "obs", "retry", "progress")

    def __init__(self, budget: Budget | None = None,
                 deadline: Deadline | None = None,
                 cancellation: CancellationToken | None = None,
                 faults: "FaultInjector | None" = None,
                 obs: object | None = None,
                 retry: "RetryPolicy | None" = None,
                 progress: object | None = None) -> None:
        self.budget = budget
        self.deadline = deadline
        self.cancellation = cancellation
        self.faults = faults
        self.ticks = 0
        #: Optional :class:`repro.obs.Observation` — tracing/metrics
        #: ride on the governor because it already travels down every
        #: search path; :meth:`tick` never touches it, so observation
        #: costs nothing when detached.
        self.obs = obs
        #: Optional :class:`repro.runtime.retry.RetryPolicy` — how the
        #: parallel shard supervisor handles worker failure.  Like
        #: ``obs``, it rides on the governor (the one object already
        #: threaded everywhere) and :meth:`tick` never consults it.
        self.retry = retry
        #: Optional :class:`repro.obs.progress.ProgressReporter` — live
        #: percent/ETA rendering.  Parent-side only (never travels in a
        #: :class:`~repro.parallel.partition.GovernorSpec`); the shard
        #: supervisor forwards heartbeat snapshots to it, and
        #: :meth:`tick` never consults it.
        self.progress = progress

    @classmethod
    def from_limits(cls, *, budget: int | None = None,
                    timeout: float | None = None,
                    cancellation: CancellationToken | None = None,
                    faults: "FaultInjector | None" = None,
                    retry: "RetryPolicy | None" = None,
                    ) -> "ExecutionGovernor":
        """Convenience constructor from plain numbers (CLI-flag shaped)."""
        return cls(
            budget=Budget(limit=budget) if budget is not None else None,
            deadline=Deadline.after(timeout) if timeout is not None else None,
            cancellation=cancellation,
            faults=faults,
            retry=retry)

    def tick(self, kind: str = "work", amount: int = 1) -> None:
        """Charge *amount* units of *kind* work; raise on any trip.

        Called *before* the unit of work is performed, so an interrupted
        search has examined exactly the ticks that were admitted — which
        is what makes skip-count checkpoints exact.
        """
        self.ticks += amount
        if self.faults is not None:
            reason = self.faults.before_work(amount)
            if reason is not None:
                raise ExecutionInterrupted(
                    f"injected fault: simulated {reason} after "
                    f"{self.ticks - amount} tick(s)", reason=reason)
        if self.cancellation is not None and self.cancellation.cancelled:
            raise ExecutionInterrupted(
                f"search cancelled after {self.ticks - amount} tick(s)",
                reason="cancelled")
        if self.budget is not None:
            breached = self.budget.charge(kind, amount)
            if breached is not None:
                limit = (self.budget.limit if breached == "total"
                         else self.budget.kind_limits[breached])
                raise ExecutionInterrupted(
                    f"search budget of {limit} {breached} tick(s) exceeded",
                    reason="budget")
        if self.deadline is not None and self.deadline.expired():
            raise ExecutionInterrupted(
                f"deadline expired after {self.ticks - amount} tick(s)",
                reason="deadline")

    def absorb(self, counts: "dict[str, int] | None") -> None:
        """Record work that *workers* performed against split-off budget
        slices, without re-checking any limit.

        The parallel drivers (:mod:`repro.parallel`) hand each worker a
        share of this governor's *remaining* budget; after the pool is
        reconciled, the per-kind tick counts actually consumed come back
        through this method so the parent ledger stays exact across
        serial and parallel phases.  Charges here can never overdraw —
        the slices were carved out of ``budget.remaining`` — so breach
        reports are deliberately ignored; a worker that exhausted its
        slice already surfaced that as an ``EXHAUSTED`` outcome.
        """
        if not counts:
            return
        for kind, amount in counts.items():
            if amount <= 0:
                continue
            self.ticks += amount
            if self.budget is not None:
                self.budget.charge(kind, amount)

    def suggest_budget(self, estimate: object, *,
                       safety: int = 4, adopt: bool = False) -> int:
        """A budget limit sized to a static cost estimate.

        *estimate* is anything exposing a ``total_predicted`` tick count
        — a :class:`repro.analysis.cost.CostEstimate` — or a plain
        integer.  The suggestion multiplies the point estimate by
        *safety* (the cost model is bench-gated at within-4× agreement
        on full enumerations, so ``safety=4`` admits every decision the
        model understands).  With ``adopt=True`` the suggestion is
        installed as this governor's budget when none is set yet;
        an existing budget is never overwritten.
        """
        predicted = int(getattr(estimate, "total_predicted", estimate))
        suggestion = max(1, predicted) * max(1, safety)
        if adopt and self.budget is None:
            self.budget = Budget(limit=suggestion)
        return suggestion

    def check(self) -> None:
        """A zero-cost checkpoint: observe deadline/cancellation/faults
        without charging the budget."""
        if self.cancellation is not None and self.cancellation.cancelled:
            raise ExecutionInterrupted(
                f"search cancelled after {self.ticks} tick(s)",
                reason="cancelled")
        if self.deadline is not None and self.deadline.expired():
            raise ExecutionInterrupted(
                f"deadline expired after {self.ticks} tick(s)",
                reason="deadline")

    def __repr__(self) -> str:
        parts = [f"ticks={self.ticks}"]
        if self.budget is not None:
            parts.append(repr(self.budget))
        if self.deadline is not None:
            parts.append(repr(self.deadline))
        if self.cancellation is not None and self.cancellation.cancelled:
            parts.append("cancelled")
        if self.faults is not None:
            parts.append(repr(self.faults))
        return f"ExecutionGovernor[{', '.join(parts)}]"


def resolve_governor(governor: ExecutionGovernor | None,
                     budget: int | None) -> ExecutionGovernor | None:
    """Normalize a decider's ``(governor, budget)`` pair.

    The legacy ``budget=N`` kwarg becomes a governor whose budget caps the
    *total* ticks at ``N``.  For single-loop deciders like ``decide_rcdp``
    this preserves the historical "N valuations admitted" semantics; for
    composite searches it caps the combined work of every phase and nested
    call, which is the only meaningful reading of one number.  Passing
    both is ambiguous and rejected.
    """
    if governor is not None:
        if budget is not None:
            raise ReproError(
                "pass either budget= or governor=, not both — wrap the "
                "budget in ExecutionGovernor(budget=Budget(...)) instead")
        return governor
    if budget is None:
        return None
    return ExecutionGovernor(budget=Budget(limit=budget))


def validate_exhaustion_mode(on_exhausted: str) -> str:
    """Reject typos early; returns the mode unchanged."""
    if on_exhausted not in EXHAUSTION_MODES:
        raise ReproError(
            f"on_exhausted must be one of {EXHAUSTION_MODES}, "
            f"got {on_exhausted!r}")
    return on_exhausted
