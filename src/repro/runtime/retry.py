"""Retry policy for supervised parallel execution.

A :class:`RetryPolicy` tells the :class:`~repro.parallel.supervise.
ShardSupervisor` how to react when a worker process dies (or goes
silent) without reporting an outcome: how many times to respawn the
shard from its last progress snapshot, how long to back off between
attempts, how often workers must prove liveness, and what to do with a
*poison* shard that keeps crashing.

The policy rides on :class:`~repro.runtime.governor.ExecutionGovernor`
(its ``retry`` slot) and is threaded through
:class:`~repro.parallel.partition.GovernorSpec`, so retried shards draw
from the same budget ledger as their failed predecessors and absolute
deadlines are honored across attempts — a retry is a *resumption*, not
a fresh run.

Quarantine (``on_poison="serial"``, the default) is the graceful-
degradation endpoint: after ``max_retries`` failed respawns the shard's
slice is re-run **in-process serially**, with process-level fault
injection disarmed, so the union of scanned slices stays exact and the
supervised run always terminates with the worker-count-invariant
verdict.  ``on_poison="error"`` fails fast with
:class:`~repro.errors.WorkerPoolError` instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["RetryPolicy", "POISON_MODES"]

#: Valid values for :attr:`RetryPolicy.on_poison`.
POISON_MODES = ("serial", "error")

#: Without an explicit ``silent_after``, a worker is declared hung
#: after this many missed heartbeat intervals.  Generous on purpose:
#: a false positive only costs a retry (the run stays correct), but a
#: spawn-start worker pays module-import time before its first beat.
_SILENT_HEARTBEATS = 40.0


@dataclass(frozen=True)
class RetryPolicy:
    """How the shard supervisor handles worker failure.

    Attributes
    ----------
    max_retries:
        Respawn attempts per shard beyond the first run; a shard that
        fails ``max_retries + 1`` times is poison and falls to
        *on_poison*.
    backoff_base, backoff_cap, backoff_jitter:
        Respawn delay: ``min(cap, base * 2**retries_used)`` seconds,
        stretched by up to ``jitter`` (fractional, seeded — the delay
        is deterministic for a fixed policy seed and failure history).
    heartbeat:
        Interval at which workers publish progress snapshots, which
        double as liveness beats and exact restart checkpoints.
    silent_after:
        A live worker that has not been heard from for this many
        seconds is declared hung, killed, and retried; ``None`` means
        40 heartbeat intervals.
    on_poison:
        ``"serial"`` (default) re-runs a poison shard in-process with
        process faults disarmed; ``"error"`` raises
        :class:`~repro.errors.WorkerPoolError`.
    supervise:
        ``False`` selects the legacy fail-fast pool: no heartbeats, no
        retries — any worker death aborts the decision.
    seed:
        Seed for the backoff jitter.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    backoff_jitter: float = 0.1
    heartbeat: float = 0.25
    silent_after: float | None = None
    on_poison: str = "serial"
    supervise: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError(
                f"max_retries must be nonnegative, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ReproError(
                f"backoff_base must be nonnegative, got {self.backoff_base}")
        if self.backoff_cap < self.backoff_base:
            raise ReproError(
                f"backoff_cap ({self.backoff_cap}) must be >= backoff_base "
                f"({self.backoff_base})")
        if self.backoff_jitter < 0:
            raise ReproError(
                f"backoff_jitter must be nonnegative, "
                f"got {self.backoff_jitter}")
        if self.heartbeat <= 0:
            raise ReproError(
                f"heartbeat must be positive, got {self.heartbeat}")
        if self.silent_after is not None and self.silent_after <= 0:
            raise ReproError(
                f"silent_after must be positive, got {self.silent_after}")
        if self.on_poison not in POISON_MODES:
            raise ReproError(
                f"on_poison must be one of {POISON_MODES}, "
                f"got {self.on_poison!r}")

    @classmethod
    def disabled(cls) -> "RetryPolicy":
        """The legacy fail-fast pool: no supervision, no retries."""
        return cls(supervise=False, max_retries=0, on_poison="error")

    @property
    def effective_silent_after(self) -> float:
        return (self.silent_after if self.silent_after is not None
                else self.heartbeat * _SILENT_HEARTBEATS)

    def backoff_delay(self, retries_used: int, key: int = 0) -> float:
        """Seconds to wait before respawn number ``retries_used + 1``.

        Deterministic for a fixed ``(seed, key, retries_used)`` triple;
        *key* decorrelates shards so a correlated crash (e.g. OOM) does
        not respawn every shard at the same instant.
        """
        base = min(self.backoff_cap,
                   self.backoff_base * (2.0 ** max(0, retries_used)))
        rng = random.Random(self.seed * 1_000_003 + key * 8191
                            + retries_used)
        return base * (1.0 + self.backoff_jitter * rng.random())
