"""A small relational algebra over named relations.

The paper phrases several constructions algebraically ("take the product
``R6 × T``", "π_x̄(...)", "σ_{X1 ≠ Z}(R1)"); this module provides those
operators directly, both as a convenience for users who think in algebra
and as an independent evaluation path the tests use to cross-validate the
CQ engine (select–project–join expressions and their CQ renderings must
agree on random instances).

Expressions are immutable trees over *named columns*; evaluation against an
:class:`~repro.relational.instance.Instance` yields a
:class:`NamedRelation` (a schema-of-names plus a set of rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import EvaluationError, SchemaError
from repro.relational.instance import Instance

__all__ = ["NamedRelation", "Expression", "Relation", "Selection",
           "Projection", "Rename", "NaturalJoin", "Product", "Union",
           "Difference", "scan", "select_eq", "select_neq"]


@dataclass(frozen=True)
class NamedRelation:
    """An evaluation result: column names plus rows."""

    columns: tuple[str, ...]
    rows: frozenset[tuple]

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate columns in {self.columns}")

    def index_of(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise EvaluationError(
                f"no column {column!r}; available {self.columns}"
            ) from None

    def __len__(self) -> int:
        return len(self.rows)

    def as_set_of_dicts(self) -> set[tuple]:
        """Rows as sorted (column, value) tuples — order-insensitive."""
        return {tuple(sorted(zip(self.columns, row)))
                for row in self.rows}


class Expression:
    """Base class of algebra expression nodes."""

    def evaluate(self, instance: Instance) -> NamedRelation:
        raise NotImplementedError

    # Fluent combinators -------------------------------------------------

    def where(self, predicate: "Callable[[dict], bool]",
              description: str = "λ") -> "Selection":
        return Selection(self, predicate, description)

    def project(self, columns: Sequence[str]) -> "Projection":
        return Projection(self, tuple(columns))

    def rename(self, mapping: dict[str, str]) -> "Rename":
        return Rename(self, dict(mapping))

    def join(self, other: "Expression") -> "NaturalJoin":
        return NaturalJoin(self, other)

    def product(self, other: "Expression") -> "Product":
        return Product(self, other)

    def union(self, other: "Expression") -> "Union":
        return Union(self, other)

    def difference(self, other: "Expression") -> "Difference":
        return Difference(self, other)


@dataclass(frozen=True)
class Relation(Expression):
    """A base-relation scan; columns default to the schema's names."""

    name: str

    def evaluate(self, instance: Instance) -> NamedRelation:
        schema = instance.schema.relation(self.name)
        return NamedRelation(schema.attribute_names,
                             instance.relation(self.name))

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Selection(Expression):
    """``σ_predicate(child)`` — the predicate sees a column→value dict."""

    child: Expression
    predicate: Callable[[dict], bool]
    description: str = "λ"

    def evaluate(self, instance: Instance) -> NamedRelation:
        child = self.child.evaluate(instance)
        rows = frozenset(
            row for row in child.rows
            if self.predicate(dict(zip(child.columns, row))))
        return NamedRelation(child.columns, rows)

    def __repr__(self) -> str:
        return f"σ[{self.description}]({self.child!r})"


def select_eq(child: Expression, column: str, value: Any) -> Selection:
    """``σ_{column = value}``."""
    return Selection(child, lambda row: row[column] == value,
                     description=f"{column}={value!r}")


def select_neq(child: Expression, column: str, value: Any) -> Selection:
    """``σ_{column ≠ value}``."""
    return Selection(child, lambda row: row[column] != value,
                     description=f"{column}≠{value!r}")


@dataclass(frozen=True)
class Projection(Expression):
    """``π_columns(child)`` (set semantics: duplicates collapse)."""

    child: Expression
    columns: tuple[str, ...]

    def evaluate(self, instance: Instance) -> NamedRelation:
        child = self.child.evaluate(instance)
        indices = [child.index_of(c) for c in self.columns]
        rows = frozenset(
            tuple(row[i] for i in indices) for row in child.rows)
        return NamedRelation(self.columns, rows)

    def __repr__(self) -> str:
        return f"π[{', '.join(self.columns)}]({self.child!r})"


@dataclass(frozen=True)
class Rename(Expression):
    """``ρ_{old→new}(child)``."""

    child: Expression
    mapping: dict[str, str]

    def __init__(self, child: Expression, mapping: dict[str, str]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "mapping", dict(mapping))

    def evaluate(self, instance: Instance) -> NamedRelation:
        child = self.child.evaluate(instance)
        columns = tuple(self.mapping.get(c, c) for c in child.columns)
        return NamedRelation(columns, child.rows)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a}→{b}" for a, b in self.mapping.items())
        return f"ρ[{inner}]({self.child!r})"


@dataclass(frozen=True)
class NaturalJoin(Expression):
    """``child ⋈ other`` on all shared column names."""

    left: Expression
    right: Expression

    def evaluate(self, instance: Instance) -> NamedRelation:
        left = self.left.evaluate(instance)
        right = self.right.evaluate(instance)
        shared = [c for c in left.columns if c in right.columns]
        right_only = [c for c in right.columns if c not in shared]
        left_key = [left.index_of(c) for c in shared]
        right_key = [right.index_of(c) for c in shared]
        right_rest = [right.index_of(c) for c in right_only]

        by_key: dict[tuple, list[tuple]] = {}
        for row in right.rows:
            key = tuple(row[i] for i in right_key)
            by_key.setdefault(key, []).append(
                tuple(row[i] for i in right_rest))

        rows = set()
        for row in left.rows:
            key = tuple(row[i] for i in left_key)
            for rest in by_key.get(key, ()):
                rows.add(row + rest)
        return NamedRelation(left.columns + tuple(right_only),
                             frozenset(rows))

    def __repr__(self) -> str:
        return f"({self.left!r} ⋈ {self.right!r})"


@dataclass(frozen=True)
class Product(Expression):
    """``child × other``; column names must be disjoint."""

    left: Expression
    right: Expression

    def evaluate(self, instance: Instance) -> NamedRelation:
        left = self.left.evaluate(instance)
        right = self.right.evaluate(instance)
        clash = set(left.columns) & set(right.columns)
        if clash:
            raise EvaluationError(
                f"product columns clash: {sorted(clash)}; rename first")
        rows = frozenset(l + r for l in left.rows for r in right.rows)
        return NamedRelation(left.columns + right.columns, rows)

    def __repr__(self) -> str:
        return f"({self.left!r} × {self.right!r})"


class _SetOperation(Expression):
    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    def _operands(self, instance: Instance
                  ) -> tuple[NamedRelation, NamedRelation]:
        left = self.left.evaluate(instance)
        right = self.right.evaluate(instance)
        if len(left.columns) != len(right.columns):
            raise EvaluationError(
                f"set operation arity mismatch: {left.columns} vs "
                f"{right.columns}")
        return left, right


class Union(_SetOperation):
    """``child ∪ other`` (columns taken from the left operand)."""

    def evaluate(self, instance: Instance) -> NamedRelation:
        left, right = self._operands(instance)
        return NamedRelation(left.columns, left.rows | right.rows)

    def __repr__(self) -> str:
        return f"({self.left!r} ∪ {self.right!r})"


class Difference(_SetOperation):
    """``child − other``."""

    def evaluate(self, instance: Instance) -> NamedRelation:
        left, right = self._operands(instance)
        return NamedRelation(left.columns, left.rows - right.rows)

    def __repr__(self) -> str:
        return f"({self.left!r} − {self.right!r})"


def scan(name: str) -> Relation:
    """Shorthand for :class:`Relation`."""
    return Relation(name)
