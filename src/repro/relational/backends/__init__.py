"""Pluggable storage backends for :class:`~repro.relational.instance.
Instance`.

The decision procedures reduce everything to one operation: evaluate a
compiled CQ plan over ``D`` or over a candidate extension ``D ∪ Δ``.  A
:class:`StorageBackend` is the execution structure that answers those
questions for one (immutable) instance.  Three implementations ship:

``python``
    The reference backend: the instance's frozensets of tuples, probed
    through lazily built hash indexes by the tuple-at-a-time
    backtracking executor (:mod:`repro.engine.executor`).  This is the
    semantics oracle — the other backends must agree with it bit for
    bit on answers.
``columnar``
    Per-relation column arrays of *interned* constants (every distinct
    value becomes a small integer code) with set-at-a-time
    selection/join primitives: each plan step expands a whole batch of
    partial bindings at once instead of recursing row by row
    (:mod:`repro.relational.backends.columnar`).
``sqlite``
    Whole plans lowered to a single SQL statement (pushdown) over an
    in-memory SQLite database bulk-loaded with the interned codes;
    candidate extensions run inside a savepoint, and containment
    violation checks push ``LIMIT 1`` into the engine
    (:mod:`repro.relational.backends.sqlite`).

Interning is sound because plan comparisons are ``=`` / ``≠`` only
(:mod:`repro.engine.plan` admits no order comparisons) and the interner
is a plain dict keyed by the values themselves — two values receive the
same code exactly when Python considers them equal, which is the same
equivalence the frozenset contents already collapsed under.

Backends attach to an instance via :meth:`Instance.storage` and are
transient: never pickled, rebuilt on demand in worker processes.  See
``docs/BACKENDS.md`` for the contract and the pushdown lowering rules.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import CompiledPlan
    from repro.relational.instance import Instance

__all__ = ["BACKEND_NAMES", "BACKEND_ENV_VAR", "DEFAULT_BACKEND",
           "StorageBackend", "resolve_backend_name", "create_storage"]

#: The selectable backend kinds, in documentation order.
BACKEND_NAMES = ("python", "columnar", "sqlite")

#: Environment variable consulted when no backend is named explicitly —
#: the CI backend matrix runs the whole suite under each value.
BACKEND_ENV_VAR = "REPRO_BACKEND"

DEFAULT_BACKEND = "python"

#: Δ-facts grouped by relation: the rows of each relation genuinely new
#: with respect to the base instance (pre-filtered by the caller).
DeltaRows = Mapping[str, Sequence[tuple]]

#: Callback invoked with ``(relation, positions)`` for every index /
#: acceleration structure a plan *requires* (built or already present):
#: storages are shared across evaluation contexts, so the context — not
#: the storage — deduplicates the charge (governor ticks and the
#: ``index_builds`` counter) once per instance, keeping counters
#: identical whether or not the storage was pre-warmed.
OnBuild = Callable[[str, tuple[int, ...]], None]


def resolve_backend_name(name: str | None = None) -> str:
    """Normalize a backend choice: explicit name > ``$REPRO_BACKEND`` >
    ``"python"``.  Unknown names raise :class:`~repro.errors.ReproError`
    (typos must not silently fall back to a different engine)."""
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    if name not in BACKEND_NAMES:
        raise ReproError(
            f"unknown storage backend {name!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)}")
    return name


class StorageBackend:
    """The contract every instance storage implements.

    A storage belongs to exactly one immutable instance.  All methods
    are *pure* with respect to the instance's logical contents; the only
    mutable state is lazily built acceleration structure (hash indexes,
    SQL indexes), reported through the per-call *on_build* callback.

    ``plan_rows`` / ``plan_rows_extended`` return exactly the rows the
    reference evaluator returns — set semantics, decoded to the original
    Python values.  ``plan_violates`` is the containment-check fast
    path: it may stop at the first offending answer, but its verdict
    must equal the full-evaluation subset test.
    """

    #: Set by each implementation to its :data:`BACKEND_NAMES` entry.
    kind: str = "abstract"

    def __init__(self, instance: "Instance") -> None:
        self.instance = instance

    # -- evaluation ----------------------------------------------------

    def plan_rows(self, plan: "CompiledPlan", *,
                  on_build: OnBuild | None = None) -> frozenset[tuple]:
        """All head rows of *plan* over the instance (set semantics)."""
        raise NotImplementedError

    def plan_rows_extended(self, plan: "CompiledPlan", delta: DeltaRows, *,
                           on_build: OnBuild | None = None,
                           ) -> frozenset[tuple]:
        """All head rows of *plan* over ``instance ∪ Δ``, without
        materializing the union instance."""
        raise NotImplementedError

    def plan_violates(self, plan: "CompiledPlan", delta: DeltaRows,
                      allowed: frozenset[tuple] | None, *,
                      on_build: OnBuild | None = None) -> bool:
        """True iff *plan* over ``instance ∪ Δ`` has an answer outside
        *allowed* (``None`` encodes the empty target ``∅``: any answer
        at all violates).  Default: full evaluation plus a subset test;
        backends override to early-exit (the SQLite backend pushes
        ``LIMIT 1`` into the engine)."""
        rows = self.plan_rows_extended(plan, delta, on_build=on_build)
        if allowed is None:
            return bool(rows)
        return not rows <= allowed

    # -- extension derivation ------------------------------------------

    def derive(self, extended: "Instance",
               new_rows: DeltaRows) -> "StorageBackend | None":
        """A storage for *extended* = ``instance ∪ new_rows``, reusing
        this storage's structure where possible.  ``None`` means "no
        cheap derivation" — the extended instance builds a storage from
        scratch if and when one is requested."""
        return None

    def __repr__(self) -> str:
        return (f"{type(self).__name__}[{self.kind}, "
                f"{self.instance.total_tuples} tuple(s)]")


def create_storage(kind: str, instance: "Instance") -> StorageBackend:
    """Build a fresh storage of *kind* for *instance*.

    Implementations import lazily: they depend on :mod:`repro.engine`
    modules that in turn import this registry, and deferring the import
    to first use keeps the package import-cycle free.
    """
    kind = resolve_backend_name(kind)
    if kind == "python":
        from repro.relational.backends.python_rows import PythonRowStorage

        return PythonRowStorage(instance)
    if kind == "columnar":
        from repro.relational.backends.columnar import ColumnarStorage

        return ColumnarStorage(instance)
    from repro.relational.backends.sqlite import SQLiteStorage

    return SQLiteStorage(instance)
