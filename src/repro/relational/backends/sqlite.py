"""SQLite storage: whole-plan pushdown over an in-memory database.

The instance's relations are bulk-loaded (``executemany``) into one
in-memory SQLite database as *interned* integer codes — table ``t{i}``
for the ``i``-th relation of the schema, columns ``c0 … c{arity-1}``,
nullary relations as a single dummy column holding one row when the
fact is present.  Compiled plans lower to single ``SELECT`` statements
(:mod:`repro.engine.sql`), so a join that the Python executor walks
row by row runs entirely inside SQLite's bytecode VM.

Candidate extensions ``D ∪ Δ`` never copy the database: Δ-rows are
inserted under a ``SAVEPOINT`` and rolled back after the query.  The
containment-check fast path :meth:`SQLiteStorage.plan_violates` is
where the pushdown pays off most — an at-most-``k`` constraint (empty
target) becomes ``SELECT 1 … LIMIT 1``, and a general target pushes the
allowed answers into a ``NOT IN (VALUES …)`` filter, so the engine
stops at the first violating answer instead of materializing the full
answer set.

SQL indexes are created lazily per ``(relation, key positions)`` pair
actually probed, reported through *on_build* exactly like the hash
indexes of the reference backend.
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING, Any

from repro.engine.sql import LoweredPlan, lower_plan
from repro.relational.backends import DeltaRows, OnBuild, StorageBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import CompiledPlan
    from repro.relational.instance import Instance

__all__ = ["SQLiteStorage"]

#: Above this many allowed rows the ``NOT IN (VALUES …)`` filter is
#: abandoned for a full evaluation + subset test in Python (giant
#: parameter lists cost more than they save).
_ALLOWED_CAP = 500


class SQLiteStorage(StorageBackend):
    """Interned relations in an in-memory SQLite database; plans run as
    single pushed-down SQL statements."""

    kind = "sqlite"

    def __init__(self, instance: "Instance") -> None:
        super().__init__(instance)
        self._codes: dict[Any, int] = {}
        self._values: list[Any] = []
        self._lowered_plans: dict[int, tuple["CompiledPlan",
                                             LoweredPlan]] = {}
        self._sql_indexes: set[tuple[str, tuple[int, ...]]] = set()
        self._table_of: dict[str, str] = {}
        self._connection = sqlite3.connect(
            ":memory:", check_same_thread=False)
        self._load(instance)

    # -- interning -----------------------------------------------------

    def _intern(self, value: Any) -> int:
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    # -- schema + bulk load --------------------------------------------

    def _load(self, instance: "Instance") -> None:
        cursor = self._connection.cursor()
        for i, name in enumerate(instance.schema.relation_names):
            table = f"t{i}"
            self._table_of[name] = table
            width = max(instance.schema.relation(name).arity, 1)
            columns = ", ".join(f"c{j} INTEGER" for j in range(width))
            cursor.execute(f"CREATE TABLE {table} ({columns})")
            rows = instance.relation(name)
            if not rows:
                continue
            placeholders = ", ".join("?" * width)
            cursor.executemany(
                f"INSERT INTO {table} VALUES ({placeholders})",
                [self._encode_row(row) for row in rows])
        self._connection.commit()

    def _encode_row(self, row: tuple) -> tuple[int, ...]:
        if not row:  # nullary fact: one dummy-column row
            return (0,)
        return tuple(self._intern(value) for value in row)

    # -- plan cache + lazy SQL indexes ---------------------------------

    def _lowered(self, plan: "CompiledPlan") -> LoweredPlan:
        cached = self._lowered_plans.get(id(plan))
        if cached is not None and cached[0] is plan:
            return cached[1]
        lowered = lower_plan(plan, self._table_of)
        self._lowered_plans[id(plan)] = (plan, lowered)
        return lowered

    def _ensure_indexes(self, plan: "CompiledPlan",
                        on_build: OnBuild | None) -> None:
        for step in plan.steps:
            if not step.key_positions:
                continue
            # Charged per *requirement* (the context dedupes per
            # instance): the storage outlives evaluation contexts, so a
            # consumer's counters must not depend on who warmed it.
            if on_build is not None:
                on_build(step.relation, step.key_positions)
            key = (step.relation, step.key_positions)
            if key in self._sql_indexes:
                continue
            table = self._table_of[step.relation]
            name = "ix_" + table + "_" + "_".join(
                str(p) for p in step.key_positions)
            columns = ", ".join(f"c{p}" for p in step.key_positions)
            self._connection.execute(
                f"CREATE INDEX IF NOT EXISTS {name} ON {table} "
                f"({columns})")
            self._sql_indexes.add(key)

    # -- execution helpers ---------------------------------------------

    def _encode_params(self, params: tuple[Any, ...]) -> list[int]:
        return [self._intern(value) for value in params]

    def _decode(self, lowered: LoweredPlan,
                fetched: list[tuple]) -> frozenset[tuple]:
        values = self._values
        pattern = lowered.head_pattern
        return frozenset(
            tuple(value if tag == "const" else values[row[value]]
                  for tag, value in pattern)
            for row in fetched)

    def _const_head(self, lowered: LoweredPlan) -> tuple:
        return tuple(value for _, value in lowered.head_pattern)

    def _rows_now(self, plan: "CompiledPlan",
                  on_build: OnBuild | None) -> frozenset[tuple]:
        """Evaluate *plan* against the database's current contents."""
        if not plan.satisfiable:
            return frozenset()
        if not plan.steps:
            return frozenset({plan_head_constants(plan)})
        lowered = self._lowered(plan)
        self._ensure_indexes(plan, on_build)
        params = self._encode_params(lowered.params)
        cursor = self._connection.execute(lowered.sql_rows(), params)
        if not lowered.select_cols:
            # Existence probe: the head is all-constant (or empty).
            if cursor.fetchone() is None:
                return frozenset()
            return frozenset({self._const_head(lowered)})
        return self._decode(lowered, cursor.fetchall())

    def _insert_delta(self, delta: DeltaRows) -> None:
        for name, rows in delta.items():
            table = self._table_of[name]
            coded = [self._encode_row(tuple(row)) for row in rows]
            if not coded:
                continue
            placeholders = ", ".join("?" * len(coded[0]))
            self._connection.executemany(
                f"INSERT INTO {table} VALUES ({placeholders})", coded)

    # -- StorageBackend API --------------------------------------------

    def plan_rows(self, plan: "CompiledPlan", *,
                  on_build: OnBuild | None = None) -> frozenset[tuple]:
        return self._rows_now(plan, on_build)

    def plan_rows_extended(self, plan: "CompiledPlan", delta: DeltaRows, *,
                           on_build: OnBuild | None = None,
                           ) -> frozenset[tuple]:
        if not delta:
            return self._rows_now(plan, on_build)
        connection = self._connection
        connection.execute("SAVEPOINT delta")
        try:
            self._insert_delta(delta)
            return self._rows_now(plan, on_build)
        finally:
            connection.execute("ROLLBACK TO delta")
            connection.execute("RELEASE delta")

    def plan_violates(self, plan: "CompiledPlan", delta: DeltaRows,
                      allowed: frozenset[tuple] | None, *,
                      on_build: OnBuild | None = None) -> bool:
        if not plan.satisfiable:
            return False
        if not plan.steps:
            head = plan_head_constants(plan)
            return allowed is None or head not in allowed
        lowered = self._lowered(plan)
        if allowed is None:
            extra, extra_params = "", []
        else:
            if len(allowed) > _ALLOWED_CAP:
                rows = self.plan_rows_extended(plan, delta,
                                               on_build=on_build)
                return not rows <= allowed
            projected = self._project_allowed(lowered, allowed)
            if projected is None:
                # All-constant head covered by *allowed*: the answer
                # set is ⊆ {head} ⊆ allowed, no violation possible.
                return False
            if not lowered.select_cols:
                extra, extra_params = "", []
            else:
                extra, extra_params = _not_in_filter(
                    lowered.select_cols, projected)
        self._ensure_indexes(plan, on_build)
        params = self._encode_params(lowered.params) + extra_params
        sql = lowered.sql_exists(extra)
        connection = self._connection
        if not delta:
            return connection.execute(sql, params).fetchone() is not None
        connection.execute("SAVEPOINT delta")
        try:
            self._insert_delta(delta)
            return connection.execute(sql, params).fetchone() is not None
        finally:
            connection.execute("ROLLBACK TO delta")
            connection.execute("RELEASE delta")

    def _project_allowed(self, lowered: LoweredPlan,
                         allowed: frozenset[tuple],
                         ) -> list[tuple[int, ...]] | None:
        """Project *allowed* rows onto the selected head columns.

        Rows inconsistent with the head's constants or repeated
        variables can never be produced and are dropped.  Returns
        ``None`` when the head selects no columns but some allowed row
        matches the constant head — i.e. no violation is possible.
        """
        pattern = lowered.head_pattern
        width = len(lowered.select_cols)
        projected: set[tuple[int, ...]] = set()
        matched_constant_head = False
        for row in allowed:
            if len(row) != len(pattern):
                continue
            cells: list[int | None] = [None] * width
            ok = True
            for (tag, value), cell in zip(pattern, row):
                if tag == "const":
                    if cell != value:
                        ok = False
                        break
                else:
                    code = self._intern(cell)
                    if cells[value] is None:
                        cells[value] = code
                    elif cells[value] != code:
                        ok = False
                        break
            if not ok:
                continue
            if width == 0:
                matched_constant_head = True
                break
            projected.add(tuple(cells))  # type: ignore[arg-type]
        if width == 0 and matched_constant_head:
            return None
        return sorted(projected)


def _not_in_filter(select_cols: tuple[str, ...],
                   projected: list[tuple[int, ...]],
                   ) -> tuple[str, list[int]]:
    """Render ``(cols) NOT IN (VALUES …)`` with its parameters; an
    empty *projected* set means every answer violates (no filter)."""
    if not projected:
        return "", []
    params = [code for row in projected for code in row]
    if len(select_cols) == 1:
        placeholders = ", ".join("?" * len(projected))
        return f"{select_cols[0]} NOT IN ({placeholders})", params
    row_ph = "(" + ", ".join("?" * len(select_cols)) + ")"
    values = ", ".join(row_ph for _ in projected)
    cols = "(" + ", ".join(select_cols) + ")"
    return f"{cols} NOT IN (VALUES {values})", params


def plan_head_constants(plan: "CompiledPlan") -> tuple:
    """The single answer row of an atom-less (hence all-constant) plan."""
    return tuple(term.value for term in plan.head)
