"""The reference backend: frozensets of tuples + hash-index probing.

This storage wraps the tuple-at-a-time machinery that predates the
backend seam — :class:`~repro.engine.indexes.InstanceIndexes` plus the
backtracking executor of :mod:`repro.engine.executor` — behind the
:class:`~repro.relational.backends.StorageBackend` contract.  It is the
semantics oracle the columnar and SQLite backends are differentially
tested against, and the default everywhere.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.executor import (ChainSource, DeltaSource, IndexedSource,
                                   iter_rows)
from repro.engine.indexes import InstanceIndexes
from repro.relational.backends import DeltaRows, OnBuild, StorageBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import CompiledPlan
    from repro.relational.instance import Instance

__all__ = ["PythonRowStorage"]


class PythonRowStorage(StorageBackend):
    """Hash-indexed row sets probed tuple-at-a-time."""

    kind = "python"

    def __init__(self, instance: "Instance") -> None:
        super().__init__(instance)
        self._indexes = InstanceIndexes(instance)

    @property
    def indexes(self) -> InstanceIndexes:
        """The underlying index set (shared with the evaluation context
        when it routes through this storage)."""
        return self._indexes

    def plan_rows(self, plan: "CompiledPlan", *,
                  on_build: OnBuild | None = None) -> frozenset[tuple]:
        # on_build is per-call state (each context charges its own
        # governor) while the indexes are per-instance; swap it in for
        # the duration of the probe.
        self._indexes.on_build = on_build
        try:
            source = IndexedSource(self._indexes)
            return frozenset(
                iter_rows(plan, (source,) * len(plan.steps)))
        finally:
            self._indexes.on_build = None

    def plan_rows_extended(self, plan: "CompiledPlan", delta: DeltaRows, *,
                           on_build: OnBuild | None = None,
                           ) -> frozenset[tuple]:
        delta_rows = {name: list(rows) for name, rows in delta.items()}
        if not delta_rows:
            return self.plan_rows(plan, on_build=on_build)
        self._indexes.on_build = on_build
        try:
            source = ChainSource(IndexedSource(self._indexes),
                                 DeltaSource(delta_rows))
            return frozenset(
                iter_rows(plan, (source,) * len(plan.steps)))
        finally:
            self._indexes.on_build = None
