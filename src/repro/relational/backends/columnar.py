"""Columnar storage: interned constants, set-at-a-time join execution.

Every distinct constant of the instance is *interned* — assigned a small
integer code by a plain dict lookup, so two values share a code exactly
when Python considers them equal (the same equivalence the frozenset
contents collapse under).  Relations become lists of coded rows, and the
lazily built hash indexes group coded rows by coded keys.

Execution is breadth-first instead of the executor's depth-first
backtracking: a *batch* of partial binding environments (tuples of
codes, one slot per bound variable) flows through the plan, and each
step expands the whole batch against its index in one pass, deduping
between steps.  All comparisons in plans are ``=`` / ``≠``
(:mod:`repro.engine.plan`), so they run directly on the codes.

Candidate extensions never rebuild the storage: ``Δ`` rows are interned
on the fly and probed as a per-relation overlay next to the base index,
and :meth:`ColumnarStorage.derive` produces the storage of ``D ∪ Δ`` by
sharing the interner, the unchanged column lists, and the already built
indexes of unchanged relations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.queries.atoms import Eq
from repro.queries.terms import Const, Var
from repro.relational.backends import DeltaRows, OnBuild, StorageBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import CompiledPlan, PlanStep
    from repro.relational.instance import Instance

__all__ = ["ColumnarStorage"]

#: A value source inside a batch program: ``(True, slot)`` reads the
#: environment slot, ``(False, value)`` is an interned constant code.
_FROM_ENV = True
_CONST = False


class _BatchStep:
    """One plan step compiled against the interner: everything resolved
    to environment slots and constant codes."""

    __slots__ = ("relation", "key_positions", "key_sources",
                 "out_positions", "intra", "comparisons", "width")

    def __init__(self, relation: str, key_positions: tuple[int, ...],
                 key_sources: tuple, out_positions: tuple[int, ...],
                 intra: tuple, comparisons: tuple, width: int) -> None:
        self.relation = relation
        self.key_positions = key_positions
        self.key_sources = key_sources
        self.out_positions = out_positions
        self.intra = intra
        self.comparisons = comparisons
        self.width = width


class ColumnarStorage(StorageBackend):
    """Per-relation coded row lists with batch (set-at-a-time) joins."""

    kind = "columnar"

    def __init__(self, instance: "Instance",
                 _shared: "ColumnarStorage | None" = None) -> None:
        super().__init__(instance)
        if _shared is None:
            self._codes: dict[Any, int] = {}
            self._values: list[Any] = []
            self._rows: dict[str, list[tuple[int, ...]]] = {
                name: [self._encode_row(row) for row in rows]
                for name, rows in instance}
            self._indexes: dict[tuple[str, tuple[int, ...]],
                                dict[tuple, list[tuple[int, ...]]]] = {}
            self._programs: dict[int, tuple["CompiledPlan",
                                            list[_BatchStep]]] = {}
        # _shared construction is finished by derive().

    # -- interning -----------------------------------------------------

    def _intern(self, value: Any) -> int:
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def _encode_row(self, row: tuple) -> tuple[int, ...]:
        return tuple(self._intern(value) for value in row)

    # -- indexes -------------------------------------------------------

    def _index_for(self, relation: str, positions: tuple[int, ...],
                   on_build: OnBuild | None,
                   ) -> dict[tuple, list[tuple[int, ...]]]:
        # Charged on every *requirement*, not only on materialization:
        # storages outlive evaluation contexts (they are cached on the
        # instance), and a consumer's counters must not depend on who
        # warmed the storage first.  The context dedupes per instance.
        if on_build is not None:
            on_build(relation, positions)
        index = self._indexes.get((relation, positions))
        if index is None:
            index = {}
            for row in self._rows.get(relation, ()):
                key = tuple(row[p] for p in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [row]
                else:
                    bucket.append(row)
            self._indexes[(relation, positions)] = index
        return index

    # -- batch program compilation ------------------------------------

    def _program(self, plan: "CompiledPlan") -> list[_BatchStep]:
        cached = self._programs.get(id(plan))
        if cached is not None and cached[0] is plan:
            return cached[1]
        slots: dict[Var, int] = {}
        steps: list[_BatchStep] = []
        for step in plan.steps:
            steps.append(self._compile_step(step, slots))
        self._programs[id(plan)] = (plan, steps)
        return steps

    def _compile_step(self, step: "PlanStep",
                      slots: dict[Var, int]) -> _BatchStep:
        key_sources = tuple(
            (_CONST, self._intern(term.value)) if isinstance(term, Const)
            else (_FROM_ENV, slots[term])
            for term in step.key_terms)
        out_positions = tuple(position for position, _ in step.outputs)
        for _, variable in step.outputs:
            slots[variable] = len(slots)
        intra = tuple((position, slots[variable])
                      for position, variable in step.intra_checks)
        comparisons = tuple(
            (isinstance(comparison, Eq),
             self._operand(comparison.left, slots),
             self._operand(comparison.right, slots))
            for comparison in step.comparisons)
        return _BatchStep(step.relation, step.key_positions, key_sources,
                          out_positions, intra, comparisons, len(slots))

    def _operand(self, term: Any, slots: dict[Var, int]) -> tuple:
        if isinstance(term, Const):
            return (_CONST, self._intern(term.value))
        return (_FROM_ENV, slots[term])

    # -- execution -----------------------------------------------------

    def _run(self, plan: "CompiledPlan",
             delta: DeltaRows | None,
             on_build: OnBuild | None) -> frozenset[tuple]:
        if not plan.satisfiable:
            return frozenset()
        overlay: dict[str, list[tuple[int, ...]]] = {}
        if delta:
            for name, rows in delta.items():
                coded = [self._encode_row(tuple(row)) for row in rows]
                if coded:
                    overlay[name] = coded
        envs: list[tuple[int, ...]] = [()]
        for bstep in self._program(plan):
            index = self._index_for(bstep.relation, bstep.key_positions,
                                    on_build)
            extra = overlay.get(bstep.relation)
            next_envs: set[tuple[int, ...]] = set()
            for env in envs:
                key = tuple(code if tag is _CONST else env[code]
                            for tag, code in bstep.key_sources)
                rows = index.get(key, _NO_ROWS)
                if extra is not None:
                    matching = [row for row in extra
                                if tuple(row[p]
                                         for p in bstep.key_positions)
                                == key]
                    if matching:
                        rows = rows + matching
                for row in rows:
                    ext = env + tuple(row[p] for p in bstep.out_positions)
                    if any(row[p] != ext[s] for p, s in bstep.intra):
                        continue
                    if not self._comparisons_hold(bstep, ext):
                        continue
                    next_envs.add(ext)
            if not next_envs:
                return frozenset()
            envs = list(next_envs)
        head = plan.head
        if not head:
            return _TRUE
        values = self._values
        return frozenset(
            tuple(term.value if isinstance(term, Const)
                  else values[env[slot]]
                  for term, slot in zip(head, self._head_slots(plan)))
            for env in envs)

    def _head_slots(self, plan: "CompiledPlan") -> tuple[int, ...]:
        # Recompute the slot of each head variable from the program's
        # binding order (constants get a dummy slot, never read).
        slots: dict[Var, int] = {}
        for step in plan.steps:
            for _, variable in step.outputs:
                slots[variable] = len(slots)
        return tuple(slots[term] if isinstance(term, Var) else 0
                     for term in plan.head)

    @staticmethod
    def _comparisons_hold(bstep: _BatchStep,
                          env: tuple[int, ...]) -> bool:
        for is_eq, left, right in bstep.comparisons:
            lcode = left[1] if left[0] is _CONST else env[left[1]]
            rcode = right[1] if right[0] is _CONST else env[right[1]]
            if (lcode == rcode) is not is_eq:
                return False
        return True

    # -- StorageBackend API --------------------------------------------

    def plan_rows(self, plan: "CompiledPlan", *,
                  on_build: OnBuild | None = None) -> frozenset[tuple]:
        return self._run(plan, None, on_build)

    def plan_rows_extended(self, plan: "CompiledPlan", delta: DeltaRows, *,
                           on_build: OnBuild | None = None,
                           ) -> frozenset[tuple]:
        return self._run(plan, delta, on_build)

    def derive(self, extended: "Instance",
               new_rows: DeltaRows) -> "ColumnarStorage":
        """Storage for ``D ∪ Δ`` by structure sharing: the interner and
        batch programs are shared outright (append-only / plan-keyed),
        unchanged relations keep their column lists *and* built indexes,
        and changed relations copy-and-append their lists, rebuilding
        indexes lazily."""
        derived = ColumnarStorage.__new__(ColumnarStorage)
        StorageBackend.__init__(derived, extended)
        derived._codes = self._codes
        derived._values = self._values
        derived._programs = self._programs
        derived._rows = dict(self._rows)
        for name, rows in new_rows.items():
            fresh = list(self._rows.get(name, ()))
            fresh.extend(self._encode_row(tuple(row)) for row in rows)
            derived._rows[name] = fresh
        changed = set(new_rows)
        derived._indexes = {
            key: index for key, index in self._indexes.items()
            if key[0] not in changed}
        return derived


_NO_ROWS: list[tuple[int, ...]] = []
_TRUE = frozenset({()})
