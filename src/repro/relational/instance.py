"""Database instances under set semantics.

An instance ``D = (I1, ..., In)`` of a schema ``R`` maps each relation name
to a frozen set of tuples.  Instances are immutable; all operations
(:meth:`Instance.union`, :meth:`Instance.with_tuples`, ...) return new
instances.  Containment ``D ⊆ D'`` (relation-wise) is the paper's notion of
*extension* (Section 2.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.schema import DatabaseSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.backends import StorageBackend

__all__ = ["Instance", "extend_unvalidated"]

Row = tuple


class Instance:
    """An immutable database instance of a :class:`DatabaseSchema`.

    Relations not mentioned in *contents* are empty.  Every tuple is
    validated against its relation schema (arity and domains) on
    construction, so downstream algorithms can assume well-formed data.

    The frozenset-of-tuples contents are the ground truth: equality,
    hashing, ``repr`` (and therefore the engine's content-based memo
    keys) depend only on them.  Execution-oriented *storage backends*
    (:mod:`repro.relational.backends`) attach lazily via :meth:`storage`
    and are pure acceleration structures — transient, excluded from
    pickling, and rebuilt on demand wherever the instance travels.
    """

    __slots__ = ("schema", "_relations", "_adom", "_storages")

    def __init__(self, schema: DatabaseSchema,
                 contents: Mapping[str, Iterable[Row]] | None = None,
                 *, validate: bool = True) -> None:
        if not isinstance(schema, DatabaseSchema):
            raise SchemaError(
                f"expected DatabaseSchema, got {type(schema).__name__}")
        self.schema = schema
        relations: dict[str, frozenset[Row]] = {
            name: frozenset() for name in schema.relation_names}
        if contents:
            for name, rows in contents.items():
                rel = schema.relation(name)
                frozen = frozenset(tuple(row) for row in rows)
                if validate:
                    for row in frozen:
                        rel.validate_tuple(row)
                relations[name] = frozen
        self._relations = relations
        self._adom: frozenset[Any] | None = None
        self._storages: dict[str, "StorageBackend"] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, schema: DatabaseSchema) -> "Instance":
        """The empty instance of *schema*."""
        return cls(schema)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def relation(self, name: str) -> frozenset[Row]:
        """Return the set of tuples of relation *name*."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"instance schema has no relation {name!r}") from None

    def __getitem__(self, name: str) -> frozenset[Row]:
        return self.relation(name)

    def __iter__(self) -> Iterator[tuple[str, frozenset[Row]]]:
        return iter(self._relations.items())

    @property
    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rows) for rows in self._relations.values())

    def is_empty(self) -> bool:
        """True when every relation is empty."""
        return all(not rows for rows in self._relations.values())

    def active_domain(self) -> frozenset[Any]:
        """All constants appearing in any tuple of the instance.

        Computed lazily once per instance: immutability makes the result
        permanent, and the decider hot loops (:mod:`repro.core.bounded`,
        :mod:`repro.core.valuations`) ask repeatedly.
        """
        if self._adom is None:
            values: set[Any] = set()
            for rows in self._relations.values():
                for row in rows:
                    values.update(row)
            self._adom = frozenset(values)
        return self._adom

    # ------------------------------------------------------------------
    # Storage backends
    # ------------------------------------------------------------------

    def storage(self, kind: str | None = None) -> "StorageBackend":
        """The instance's storage backend of *kind*, built on first use.

        *kind* is one of :data:`~repro.relational.backends.BACKEND_NAMES`
        (``None`` resolves via the ``REPRO_BACKEND`` environment
        variable, defaulting to ``"python"``).  Storages are cached per
        kind for the instance's lifetime — immutability makes them safe
        to share — but never pickled; a worker process re-attaches its
        own on first use.
        """
        from repro.relational.backends import (create_storage,
                                               resolve_backend_name)

        kind = resolve_backend_name(kind)
        stored = self._storages.get(kind)
        if stored is None:
            stored = create_storage(kind, self)
            self._storages[kind] = stored
        return stored

    # ------------------------------------------------------------------
    # Pickling: storages (which may hold unpicklable state, e.g. an
    # sqlite connection) and caches are transient.
    # ------------------------------------------------------------------

    def __getstate__(self) -> tuple:
        return (self.schema, self._relations)

    def __setstate__(self, state: tuple) -> None:
        self.schema, self._relations = state
        self._adom = None
        self._storages = {}

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def contains(self, other: "Instance") -> bool:
        """True when ``other ⊆ self`` relation-wise.

        Both instances must share relation names (schemas need not be
        identical objects, only compatible).
        """
        for name, rows in other._relations.items():
            if rows and not rows <= self._relations.get(name, frozenset()):
                return False
        return True

    def is_extension_of(self, other: "Instance") -> bool:
        """True when ``self ⊇ other``; the paper's *extension* relation."""
        return self.contains(other)

    def union(self, other: "Instance") -> "Instance":
        """Relation-wise union; schemas are merged."""
        schema = self.schema.merged_with(other.schema)
        merged: dict[str, set[Row]] = {
            name: set(rows) for name, rows in self._relations.items()}
        for name, rows in other._relations.items():
            merged.setdefault(name, set()).update(rows)
        return Instance(schema, merged, validate=False)

    def with_tuples(self, name: str, rows: Iterable[Row]) -> "Instance":
        """Return a new instance with *rows* added to relation *name*."""
        rel = self.schema.relation(name)
        new_rows = set(self._relations[name])
        for row in rows:
            row = tuple(row)
            rel.validate_tuple(row)
            new_rows.add(row)
        contents = dict(self._relations)
        contents[name] = frozenset(new_rows)
        return Instance(self.schema, contents, validate=False)

    def with_facts(self, facts: Iterable[tuple[str, Row]]) -> "Instance":
        """Return a new instance extended with ``(relation, row)`` facts."""
        grouped: dict[str, set[Row]] = {}
        for name, row in facts:
            grouped.setdefault(name, set()).add(tuple(row))
        result = self
        for name, rows in grouped.items():
            result = result.with_tuples(name, rows)
        return result

    def restricted_to(self, names: Iterable[str]) -> "Instance":
        """Project the instance onto a subset of its relations."""
        names = set(names)
        schema = DatabaseSchema(
            rel for rel in self.schema if rel.name in names)
        contents = {name: rows for name, rows in self._relations.items()
                    if name in names}
        return Instance(schema, contents, validate=False)

    def facts(self) -> Iterator[tuple[str, Row]]:
        """Iterate over all ``(relation name, tuple)`` facts."""
        for name, rows in self._relations.items():
            for row in rows:
                yield name, row

    def difference_facts(self, other: "Instance") -> list[tuple[str, Row]]:
        """Facts of *self* missing from *other* (used in counterexamples)."""
        missing = []
        for name, rows in self._relations.items():
            other_rows = other._relations.get(name, frozenset())
            for row in rows - other_rows:
                missing.append((name, row))
        return missing

    # ------------------------------------------------------------------
    # Equality / hashing / printing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        if set(self._relations) != set(other._relations):
            return False
        return all(self._relations[name] == other._relations[name]
                   for name in self._relations)

    def __hash__(self) -> int:
        return hash(frozenset(
            (name, rows) for name, rows in self._relations.items()))

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self._relations):
            rows = self._relations[name]
            if rows:
                body = ", ".join(
                    repr(row) for row in sorted(rows, key=repr))
                parts.append(f"{name}={{{body}}}")
        inner = "; ".join(parts) if parts else "∅"
        return f"Instance[{inner}]"

    def pretty(self) -> str:
        """Multi-line rendering, one relation per block."""
        lines = []
        for rel in self.schema:
            rows = self._relations[rel.name]
            header = ", ".join(rel.attribute_names)
            lines.append(f"{rel.name}({header}): {len(rows)} tuple(s)")
            for row in sorted(rows, key=repr):
                lines.append("  " + ", ".join(repr(v) for v in row))
        return "\n".join(lines)


def extend_unvalidated(instance: Instance,
                       facts: Iterable[tuple[str, Row]]) -> Instance:
    """``instance ∪ facts`` without re-validating domains.

    The candidate-extension loops of the deciders build millions of
    ``D ∪ Δ`` instances whose facts were already drawn from validated
    pools, so the per-tuple domain checks of :meth:`Instance.with_facts`
    are pure overhead there.  Facts are ``(relation name, row)`` pairs;
    an unknown relation name still raises ``SchemaError``.

    Extension is also a backend op: storages attached to *instance* are
    asked to :meth:`~repro.relational.backends.StorageBackend.derive` a
    cheap overlay for the union, so a backend that supports it (the
    columnar one appends Δ to its column arrays) never rebuilds from
    scratch on the ``D ∪ Δ`` hot path.
    """
    grouped: dict[str, set[Row]] = {}
    for name, row in facts:
        grouped.setdefault(name, set()).add(tuple(row))
    if not grouped:
        return instance
    contents: dict[str, frozenset[Row]] = dict(instance._relations)
    new_rows: dict[str, list[Row]] = {}
    for name, rows in grouped.items():
        existing = instance.relation(name)
        contents[name] = existing | rows
        fresh = [row for row in rows if row not in existing]
        if fresh:
            new_rows[name] = fresh
    extended = Instance(instance.schema, contents, validate=False)
    for kind, storage in instance._storages.items():
        derived = storage.derive(extended, new_rows)
        if derived is not None:
            extended._storages[kind] = derived
    return extended
