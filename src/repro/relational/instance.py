"""Database instances under set semantics.

An instance ``D = (I1, ..., In)`` of a schema ``R`` maps each relation name
to a frozen set of tuples.  Instances are immutable; all operations
(:meth:`Instance.union`, :meth:`Instance.with_tuples`, ...) return new
instances.  Containment ``D ⊆ D'`` (relation-wise) is the paper's notion of
*extension* (Section 2.1).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.schema import DatabaseSchema

__all__ = ["Instance", "extend_unvalidated"]

Row = tuple


class Instance:
    """An immutable database instance of a :class:`DatabaseSchema`.

    Relations not mentioned in *contents* are empty.  Every tuple is
    validated against its relation schema (arity and domains) on
    construction, so downstream algorithms can assume well-formed data.
    """

    __slots__ = ("schema", "_relations")

    def __init__(self, schema: DatabaseSchema,
                 contents: Mapping[str, Iterable[Row]] | None = None,
                 *, validate: bool = True) -> None:
        if not isinstance(schema, DatabaseSchema):
            raise SchemaError(
                f"expected DatabaseSchema, got {type(schema).__name__}")
        self.schema = schema
        relations: dict[str, frozenset[Row]] = {
            name: frozenset() for name in schema.relation_names}
        if contents:
            for name, rows in contents.items():
                rel = schema.relation(name)
                frozen = frozenset(tuple(row) for row in rows)
                if validate:
                    for row in frozen:
                        rel.validate_tuple(row)
                relations[name] = frozen
        self._relations = relations

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, schema: DatabaseSchema) -> "Instance":
        """The empty instance of *schema*."""
        return cls(schema)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def relation(self, name: str) -> frozenset[Row]:
        """Return the set of tuples of relation *name*."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"instance schema has no relation {name!r}") from None

    def __getitem__(self, name: str) -> frozenset[Row]:
        return self.relation(name)

    def __iter__(self) -> Iterator[tuple[str, frozenset[Row]]]:
        return iter(self._relations.items())

    @property
    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rows) for rows in self._relations.values())

    def is_empty(self) -> bool:
        """True when every relation is empty."""
        return all(not rows for rows in self._relations.values())

    def active_domain(self) -> frozenset[Any]:
        """All constants appearing in any tuple of the instance."""
        values: set[Any] = set()
        for rows in self._relations.values():
            for row in rows:
                values.update(row)
        return frozenset(values)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def contains(self, other: "Instance") -> bool:
        """True when ``other ⊆ self`` relation-wise.

        Both instances must share relation names (schemas need not be
        identical objects, only compatible).
        """
        for name, rows in other._relations.items():
            if rows and not rows <= self._relations.get(name, frozenset()):
                return False
        return True

    def is_extension_of(self, other: "Instance") -> bool:
        """True when ``self ⊇ other``; the paper's *extension* relation."""
        return self.contains(other)

    def union(self, other: "Instance") -> "Instance":
        """Relation-wise union; schemas are merged."""
        schema = self.schema.merged_with(other.schema)
        merged: dict[str, set[Row]] = {
            name: set(rows) for name, rows in self._relations.items()}
        for name, rows in other._relations.items():
            merged.setdefault(name, set()).update(rows)
        return Instance(schema, merged, validate=False)

    def with_tuples(self, name: str, rows: Iterable[Row]) -> "Instance":
        """Return a new instance with *rows* added to relation *name*."""
        rel = self.schema.relation(name)
        new_rows = set(self._relations[name])
        for row in rows:
            row = tuple(row)
            rel.validate_tuple(row)
            new_rows.add(row)
        contents = dict(self._relations)
        contents[name] = frozenset(new_rows)
        return Instance(self.schema, contents, validate=False)

    def with_facts(self, facts: Iterable[tuple[str, Row]]) -> "Instance":
        """Return a new instance extended with ``(relation, row)`` facts."""
        grouped: dict[str, set[Row]] = {}
        for name, row in facts:
            grouped.setdefault(name, set()).add(tuple(row))
        result = self
        for name, rows in grouped.items():
            result = result.with_tuples(name, rows)
        return result

    def restricted_to(self, names: Iterable[str]) -> "Instance":
        """Project the instance onto a subset of its relations."""
        names = set(names)
        schema = DatabaseSchema(
            rel for rel in self.schema if rel.name in names)
        contents = {name: rows for name, rows in self._relations.items()
                    if name in names}
        return Instance(schema, contents, validate=False)

    def facts(self) -> Iterator[tuple[str, Row]]:
        """Iterate over all ``(relation name, tuple)`` facts."""
        for name, rows in self._relations.items():
            for row in rows:
                yield name, row

    def difference_facts(self, other: "Instance") -> list[tuple[str, Row]]:
        """Facts of *self* missing from *other* (used in counterexamples)."""
        missing = []
        for name, rows in self._relations.items():
            other_rows = other._relations.get(name, frozenset())
            for row in rows - other_rows:
                missing.append((name, row))
        return missing

    # ------------------------------------------------------------------
    # Equality / hashing / printing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        if set(self._relations) != set(other._relations):
            return False
        return all(self._relations[name] == other._relations[name]
                   for name in self._relations)

    def __hash__(self) -> int:
        return hash(frozenset(
            (name, rows) for name, rows in self._relations.items()))

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self._relations):
            rows = self._relations[name]
            if rows:
                body = ", ".join(
                    repr(row) for row in sorted(rows, key=repr))
                parts.append(f"{name}={{{body}}}")
        inner = "; ".join(parts) if parts else "∅"
        return f"Instance[{inner}]"

    def pretty(self) -> str:
        """Multi-line rendering, one relation per block."""
        lines = []
        for rel in self.schema:
            rows = self._relations[rel.name]
            header = ", ".join(rel.attribute_names)
            lines.append(f"{rel.name}({header}): {len(rows)} tuple(s)")
            for row in sorted(rows, key=repr):
                lines.append("  " + ", ".join(repr(v) for v in row))
        return "\n".join(lines)


def extend_unvalidated(instance: Instance,
                       facts: Iterable[tuple[str, Row]]) -> Instance:
    """``instance ∪ facts`` without re-validating domains.

    The candidate-extension loops of the deciders build millions of
    ``D ∪ Δ`` instances whose facts were already drawn from validated
    pools, so the per-tuple domain checks of :meth:`Instance.with_facts`
    are pure overhead there.  Facts are ``(relation name, row)`` pairs;
    an unknown relation name still raises ``SchemaError``.
    """
    grouped: dict[str, set[Row]] = {}
    for name, row in facts:
        grouped.setdefault(name, set()).add(tuple(row))
    if not grouped:
        return instance
    contents: dict[str, frozenset[Row]] = dict(instance._relations)
    for name, rows in grouped.items():
        existing = instance.relation(name)
        contents[name] = existing | rows
    return Instance(instance.schema, contents, validate=False)
