"""Relation and database schemas.

A database is specified by a relational schema ``R = (R1, ..., Rn)``; each
relation schema is a named sequence of attributes, and each attribute carries
a :class:`~repro.relational.domain.Domain` (Section 2.1 of the paper).

Master data is just another database schema; no restrictions are imposed on
either (the paper explicitly imposes none).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.domain import Domain, INFINITE

__all__ = ["Attribute", "RelationSchema", "DatabaseSchema"]


@dataclass(frozen=True, slots=True)
class Attribute:
    """A named attribute with a domain.

    ``Attribute("cid")`` defaults to the infinite domain; pass an explicit
    :class:`~repro.relational.domain.FiniteDomain` for finite attributes.
    """

    name: str
    domain: Domain = INFINITE

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, "
                              f"got {self.name!r}")

    def __repr__(self) -> str:
        if self.domain is INFINITE or self.domain == INFINITE:
            return self.name
        return f"{self.name}:{self.domain!r}"


class RelationSchema:
    """A relation schema: a name plus an ordered tuple of attributes.

    Attribute names must be unique within the relation.  Nullary relations
    (arity 0) are allowed — the paper's reductions use them (e.g. ``Rme``).
    """

    __slots__ = ("name", "attributes", "_index")

    def __init__(self, name: str,
                 attributes: Iterable[Attribute | str] = ()) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(
                f"relation name must be a non-empty string, got {name!r}")
        attrs = tuple(
            attr if isinstance(attr, Attribute) else Attribute(attr)
            for attr in attributes)
        seen: set[str] = set()
        for attr in attrs:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in relation {name!r}")
            seen.add(attr.name)
        self.name = name
        self.attributes = attrs
        self._index = {attr.name: pos for pos, attr in enumerate(attrs)}

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self.attributes)

    def position_of(self, attribute_name: str) -> int:
        """Return the 0-based column index of *attribute_name*."""
        try:
            return self._index[attribute_name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute "
                f"{attribute_name!r}; available: {self.attribute_names}"
            ) from None

    def domain_at(self, position: int) -> Domain:
        """Return the domain of the column at *position*."""
        if not 0 <= position < self.arity:
            raise SchemaError(
                f"column {position} out of range for relation "
                f"{self.name!r} of arity {self.arity}")
        return self.attributes[position].domain

    def validate_tuple(self, row: tuple) -> None:
        """Raise unless *row* has the right arity and in-domain values."""
        if len(row) != self.arity:
            raise SchemaError(
                f"tuple {row!r} has arity {len(row)}, but relation "
                f"{self.name!r} has arity {self.arity}")
        for value, attr in zip(row, self.attributes):
            attr.domain.validate(
                value, context=f"{self.name}.{attr.name}")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RelationSchema)
                and self.name == other.name
                and self.attributes == other.attributes)

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.attributes)
        return f"{self.name}({inner})"


class DatabaseSchema:
    """An ordered collection of relation schemas with unique names."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        mapping: dict[str, RelationSchema] = {}
        for rel in relations:
            if not isinstance(rel, RelationSchema):
                raise SchemaError(
                    f"expected RelationSchema, got {type(rel).__name__}")
            if rel.name in mapping:
                raise SchemaError(f"duplicate relation name {rel.name!r}")
            mapping[rel.name] = rel
        self._relations = mapping

    @property
    def relations(self) -> Mapping[str, RelationSchema]:
        return dict(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def relation(self, name: str) -> RelationSchema:
        """Return the relation schema called *name*."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"schema has no relation {name!r}; available: "
                f"{self.relation_names}") from None

    def extended_with(self, *relations: RelationSchema) -> "DatabaseSchema":
        """Return a new schema with *relations* appended."""
        return DatabaseSchema(tuple(self._relations.values()) + relations)

    def merged_with(self, other: "DatabaseSchema") -> "DatabaseSchema":
        """Union of two schemas; shared names must agree exactly."""
        merged = dict(self._relations)
        for rel in other:
            existing = merged.get(rel.name)
            if existing is not None and existing != rel:
                raise SchemaError(
                    f"conflicting definitions for relation {rel.name!r}")
            merged[rel.name] = rel
        return DatabaseSchema(merged.values())

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, DatabaseSchema)
                and tuple(self._relations.items())
                == tuple(other._relations.items()))

    def __hash__(self) -> int:
        return hash(tuple(self._relations.items()))

    def __repr__(self) -> str:
        inner = "; ".join(repr(r) for r in self._relations.values())
        return f"DatabaseSchema[{inner}]"
