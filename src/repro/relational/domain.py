"""Attribute domains and fresh-value supply.

The paper (Section 2.1) assumes each attribute domain is either a countably
infinite set ``d`` or a finite set ``d_f`` with at least two elements.  We
model both:

* :data:`INFINITE` — the single infinite domain.  Any hashable constant (and
  any :class:`FreshValue`) belongs to it.
* :class:`FiniteDomain` — an explicit finite set of constants.

Fresh values (the set ``New`` of Section 3.2) are represented by the
dedicated :class:`FreshValue` type so they can never collide with user
constants; this is what makes the small-model valuation enumeration sound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

from repro.errors import DomainError

__all__ = [
    "Domain",
    "InfiniteDomain",
    "FiniteDomain",
    "INFINITE",
    "BOOLEAN",
    "FreshValue",
    "FreshValueSupply",
    "is_fresh",
]


@dataclass(frozen=True, slots=True)
class FreshValue:
    """A value guaranteed distinct from every user-supplied constant.

    Fresh values implement the paper's set ``New``: "a set of distinct values
    not in D, Dm, Q and V, one for each variable" (Section 3.2).  Two fresh
    values are equal iff their labels are equal.
    """

    label: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"⊥{self.label}"


def is_fresh(value: Any) -> bool:
    """Return True when *value* is a :class:`FreshValue`."""
    return isinstance(value, FreshValue)


class Domain:
    """Abstract attribute domain."""

    #: True for the countably infinite domain ``d``.
    is_infinite: bool = False

    def __contains__(self, value: Any) -> bool:
        raise NotImplementedError

    def validate(self, value: Any, context: str = "") -> None:
        """Raise :class:`DomainError` unless *value* belongs to the domain."""
        if value not in self:
            where = f" ({context})" if context else ""
            raise DomainError(
                f"value {value!r} is not in domain {self!r}{where}")


class InfiniteDomain(Domain):
    """The countably infinite domain ``d``.

    Every hashable constant belongs to it, including fresh values.  There is
    a single canonical instance, :data:`INFINITE`.
    """

    is_infinite = True

    def __contains__(self, value: Any) -> bool:
        return isinstance(value, Hashable)

    def __repr__(self) -> str:
        return "d∞"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, InfiniteDomain)

    def __hash__(self) -> int:
        return hash(InfiniteDomain)


#: Canonical instance of the infinite domain.
INFINITE = InfiniteDomain()


@dataclass(frozen=True)
class FiniteDomain(Domain):
    """A finite domain ``d_f`` given by an explicit set of constants.

    The paper requires finite domains to have at least two elements; we
    enforce that to keep the semantics of inequality atoms meaningful.
    """

    values: frozenset = field()
    name: str = "d_f"

    def __init__(self, values: Any, name: str = "d_f") -> None:
        frozen = frozenset(values)
        if len(frozen) < 2:
            raise DomainError(
                f"finite domain {name!r} must have at least two elements, "
                f"got {sorted(map(repr, frozen))}")
        if any(is_fresh(v) for v in frozen):
            raise DomainError(
                f"finite domain {name!r} may not contain fresh values")
        object.__setattr__(self, "values", frozen)
        object.__setattr__(self, "name", name)

    is_infinite = False

    def __contains__(self, value: Any) -> bool:
        return value in self.values

    def __iter__(self) -> Iterator[Any]:
        # Deterministic iteration order helps reproducibility of the
        # valuation enumeration.
        return iter(sorted(self.values, key=repr))

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in sorted(self.values, key=repr))
        return f"{self.name}{{{inner}}}"


#: The Boolean domain {0, 1}, used pervasively by the hardness reductions.
BOOLEAN = FiniteDomain((0, 1), name="bool")


class FreshValueSupply:
    """Deterministic generator of distinct :class:`FreshValue` objects.

    A supply hands out fresh values ``⊥<prefix>0, ⊥<prefix>1, ...``; separate
    supplies with distinct prefixes never collide.
    """

    def __init__(self, prefix: str = "new") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def take(self, hint: str = "") -> FreshValue:
        """Return the next fresh value; *hint* is embedded in the label for
        readable counterexamples."""
        index = next(self._counter)
        middle = f"{hint}." if hint else ""
        return FreshValue(f"{self._prefix}.{middle}{index}")

    def take_many(self, count: int, hint: str = "") -> list[FreshValue]:
        """Return *count* distinct fresh values."""
        return [self.take(hint) for _ in range(count)]
