"""Relational substrate: domains, schemas, set-semantics instances, and
pluggable storage backends."""

from repro.relational.backends import (BACKEND_NAMES, StorageBackend,
                                       create_storage, resolve_backend_name)
from repro.relational.domain import (BOOLEAN, FiniteDomain, FreshValue,
                                     FreshValueSupply, INFINITE,
                                     InfiniteDomain, is_fresh)
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)

__all__ = [
    "Attribute",
    "BACKEND_NAMES",
    "BOOLEAN",
    "DatabaseSchema",
    "FiniteDomain",
    "FreshValue",
    "FreshValueSupply",
    "INFINITE",
    "InfiniteDomain",
    "Instance",
    "RelationSchema",
    "StorageBackend",
    "create_storage",
    "is_fresh",
    "resolve_backend_name",
]
