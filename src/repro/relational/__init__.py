"""Relational substrate: domains, schemas, and set-semantics instances."""

from repro.relational.domain import (BOOLEAN, FiniteDomain, FreshValue,
                                     FreshValueSupply, INFINITE,
                                     InfiniteDomain, is_fresh)
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)

__all__ = [
    "Attribute",
    "BOOLEAN",
    "DatabaseSchema",
    "FiniteDomain",
    "FreshValue",
    "FreshValueSupply",
    "INFINITE",
    "InfiniteDomain",
    "Instance",
    "RelationSchema",
    "is_fresh",
]
