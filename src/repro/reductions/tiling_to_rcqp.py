"""Theorem 4.5(2) lower bound: 2ⁿ×2ⁿ-TILING ⟶ RCQP(CQ, CQ).

Given a tiling instance (tiles ``T``, compatibility relations ``V``/``H``,
first tile ``t0``, exponent ``n``), the construction produces master data,
CQ containment constraints, and a CQ query such that **a tiling exists iff
RCQ(Q, Dm, V) is nonempty**.

Following the proof (Dantsin & Voronkov 1997 via the paper):

* ``R1(id, X1, X2, X3, X4, Z)`` stores rank-1 hypertiles (2×2 squares of
  tiles) under unique ids, with ``Z`` the top-left tile;
* ``Ri(id, id1..id4, id12, id13, id24, id34, id1234, Z)`` for ``i ≥ 2``
  stores rank-i hypertiles as quadruples of rank-(i-1) ids, plus the five
  *seam* hypertiles that overlap the quadrants and enforce internal
  compatibility;
* key CCs make ``id`` a key per rank; projection CCs bound tiles by the
  master tile set and enforce V/H compatibility inside rank-1 hypertiles;
  join CCs (CQ, empty target) enforce the seam equations at higher ranks;
* the *probe* relation ``Rb(w)`` has an infinite column; the final CC
  ``q(w) = [∃ rank-n hypertile with Z = t0, traceable to rank 1] ∧ Rb(w)
  ⊆ Rmb`` bounds ``Rb`` **only when a tiling exists**.

``Q`` simply returns ``Rb``: when a tiling exists, a database storing its
hypertile decomposition plus ``Rb = {(0)}`` is complete (new probes violate
the final CC); otherwise ``Rb`` is unbounded and no database is complete.

The seam equations are the paper's, with its evident typos normalized to
the geometric reading: for a rank-i hypertile ``(T1 T2 / T3 T4)`` with
``Tk = (a, b, c, d)`` quadrants of rank i-1,

* ``id12`` (top seam)        = (T1.b, T2.a, T1.d, T2.c)
* ``id13`` (left seam)       = (T1.c, T1.d, T3.a, T3.b)
* ``id24`` (right seam)      = (T2.c, T2.d, T4.a, T4.b)
* ``id34`` (bottom seam)     = (T3.b, T4.a, T3.d, T4.c)
* ``id1234`` (center)        = (T1.d, T2.c, T3.b, T4.a)

Because a seam hypertile must itself be stored (and thus internally
compatible, recursively), all adjacency constraints across quadrant borders
are enforced.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Sequence

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.errors import ReproError
from repro.queries.atoms import Eq, Neq, RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Const, Var
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)
from repro.solvers.tiling import TilingInstance

__all__ = ["TilingRCQPInstance", "reduce_tiling_to_rcqp"]

# Seam equations: each seam id maps to the quadrant cells it is built from,
# as (quadrant index 1..4, cell index 0..3 for (a, b, c, d)).
_SEAMS: dict[str, tuple[tuple[int, int], ...]] = {
    "id12": ((1, 1), (2, 0), (1, 3), (2, 2)),
    "id13": ((1, 2), (1, 3), (3, 0), (3, 1)),
    "id24": ((2, 2), (2, 3), (4, 0), (4, 1)),
    "id34": ((3, 1), (4, 0), (3, 3), (4, 2)),
    "id1234": ((1, 3), (2, 2), (3, 1), (4, 0)),
}

_HIGH_RANK_COLUMNS = ("id", "id1", "id2", "id3", "id4",
                      "id12", "id13", "id24", "id34", "id1234", "Z")


@dataclass(frozen=True)
class TilingRCQPInstance:
    """The RCQP instance produced by the reduction."""

    tiling: TilingInstance
    query: ConjunctiveQuery
    master: Instance
    constraints: tuple[ContainmentConstraint, ...]
    schema: DatabaseSchema
    master_schema: DatabaseSchema

    def witness_from_grid(self, grid: Sequence[Sequence[int]]) -> Instance:
        """Build the candidate complete database from a solved grid:
        every aligned *and seam* hypertile of every rank, plus
        ``Rb = {(0)}``."""
        return _witness_from_grid(self, grid)

    def empty_candidate(self) -> Instance:
        """A partially closed database with no hypertiles and one probe."""
        return Instance(self.schema, {"Rb": {(0,)}}, validate=False)


def _key_constraints(relation: str, columns: Sequence[str], key: str,
                     prefix: str) -> list[ContainmentConstraint]:
    """``key → column`` CCs (one per non-key column), empty target."""
    constraints = []
    for column in columns:
        if column == key:
            continue
        vars1 = {c: Var(f"{prefix}.{column}.t1.{c}") for c in columns}
        vars2 = {c: Var(f"{prefix}.{column}.t2.{c}") for c in columns}
        vars2[key] = vars1[key]
        body = [
            RelAtom(relation, tuple(vars1[c] for c in columns)),
            RelAtom(relation, tuple(vars2[c] for c in columns)),
            Neq(vars1[column], vars2[column]),
        ]
        head = tuple(vars1[c] for c in columns) + tuple(
            vars2[c] for c in columns)
        query = ConjunctiveQuery(
            head, body, name=f"q[{prefix}.key.{column}]")
        constraints.append(ContainmentConstraint(
            query, Projection.empty(), name=f"{prefix}.key.{column}"))
    return constraints


def _projection_cc(relation: str, columns: Sequence[str],
                   projected: Sequence[str], target: str,
                   target_columns: Sequence[int],
                   name: str) -> ContainmentConstraint:
    """``π_projected(relation) ⊆ π_target_columns(target)`` as a CC."""
    variables = {c: Var(f"{name}.{c}") for c in columns}
    body = [RelAtom(relation, tuple(variables[c] for c in columns))]
    head = tuple(variables[c] for c in projected)
    query = ConjunctiveQuery(head, body, name=f"q[{name}]")
    return ContainmentConstraint(
        query, Projection.on(target, target_columns), name=name)


def reduce_tiling_to_rcqp(tiling: TilingInstance) -> TilingRCQPInstance:
    """Build the Theorem 4.5(2) RCQP instance for *tiling*.

    A tiling exists iff ``RCQ(Q, Dm, V)`` is nonempty.  The exponent must
    be ≥ 1 (the paper's boards are at least 2×2).
    """
    n = tiling.exponent
    if n < 1:
        raise ReproError("the reduction needs exponent ≥ 1")

    rank1_columns = ("id", "X1", "X2", "X3", "X4", "Z")
    relations = [RelationSchema("R1", [Attribute(c) for c in
                                       rank1_columns])]
    for i in range(2, n + 1):
        relations.append(RelationSchema(
            f"R{i}", [Attribute(c) for c in _HIGH_RANK_COLUMNS]))
    relations.append(RelationSchema("Rb", ["w"]))
    schema = DatabaseSchema(relations)

    master_schema = DatabaseSchema([
        RelationSchema("RmT", ["t"]),
        RelationSchema("RmV", ["a", "b"]),
        RelationSchema("RmH", ["a", "b"]),
        RelationSchema("Rmb", ["w"]),
        RelationSchema("Rme", ["z"]),
    ])
    master = Instance(master_schema, {
        "RmT": {(t,) for t in tiling.tiles},
        "RmV": set(tiling.vertical),
        "RmH": set(tiling.horizontal),
        "Rmb": {(0,)},
    })

    constraints: list[ContainmentConstraint] = []
    # Rank-1 well-formedness: tiles in RmT, internal V/H compatibility,
    # Z equals the top-left tile, id is a key.
    for column in ("X1", "X2", "X3", "X4", "Z"):
        constraints.append(_projection_cc(
            "R1", rank1_columns, (column,), "RmT", (0,),
            name=f"R1.{column}⊆T"))
    for pair, target in ((("X1", "X3"), "RmV"), (("X2", "X4"), "RmV"),
                         (("X1", "X2"), "RmH"), (("X3", "X4"), "RmH")):
        constraints.append(_projection_cc(
            "R1", rank1_columns, pair, target, (0, 1),
            name=f"R1.{pair[0]}{pair[1]}⊆{target[-1]}"))
    # V_topl: X1 ≠ Z is forbidden.
    v1 = {c: Var(f"topl.{c}") for c in rank1_columns}
    constraints.append(ContainmentConstraint(
        ConjunctiveQuery(
            tuple(v1[c] for c in rank1_columns),
            [RelAtom("R1", tuple(v1[c] for c in rank1_columns)),
             Neq(v1["X1"], v1["Z"])],
            name="q[topl1]"),
        Projection.empty(), name="R1.topl"))
    constraints.extend(_key_constraints("R1", rank1_columns, "id", "R1"))

    # Higher ranks: id keys, seam equations, Z propagation.
    for i in range(2, n + 1):
        constraints.extend(_key_constraints(
            f"R{i}", _HIGH_RANK_COLUMNS, "id", f"R{i}"))
        constraints.extend(_seam_constraints(i))
        constraints.append(_z_propagation_constraint(i))

    # The final CC: a traceable rank-n hypertile with Z = t0 bounds Rb.
    constraints.append(_probe_constraint(tiling, n))

    w = Var("w")
    query = ConjunctiveQuery((w,), [RelAtom("Rb", (w,))], name="Qtiling")
    return TilingRCQPInstance(
        tiling=tiling, query=query, master=master,
        constraints=tuple(constraints), schema=schema,
        master_schema=master_schema)


def _sub_columns(rank: int) -> tuple[str, ...]:
    """The four 'quadrant cell' columns of a rank-*rank* row."""
    if rank == 1:
        return ("X1", "X2", "X3", "X4")
    return ("id1", "id2", "id3", "id4")


def _row_columns(rank: int) -> tuple[str, ...]:
    return _HIGH_RANK_COLUMNS if rank > 1 else \
        ("id", "X1", "X2", "X3", "X4", "Z")


def _seam_constraints(i: int) -> list[ContainmentConstraint]:
    """For each seam column of ``Ri`` and each of its four cells: the seam
    hypertile's cell must equal the corresponding quadrant cell.

    Emitted as CCs with empty target: *violations* (≠) are forbidden.
    """
    constraints = []
    lower = i - 1
    lower_rel = f"R{lower}"
    lower_cols = _row_columns(lower)
    sub_cols = _sub_columns(lower)
    for seam, cells in _SEAMS.items():
        for cell_index, (quadrant, sub_cell) in enumerate(cells):
            prefix = f"R{i}.{seam}.{cell_index}"
            t = {c: Var(f"{prefix}.t.{c}") for c in _HIGH_RANK_COLUMNS}
            s1 = {c: Var(f"{prefix}.q.{c}") for c in lower_cols}
            s2 = {c: Var(f"{prefix}.s.{c}") for c in lower_cols}
            # join: quadrant row via id_{quadrant}, seam row via seam id
            s1["id"] = t[f"id{quadrant}"]
            s2["id"] = t[seam]
            body = [
                RelAtom(f"R{i}",
                        tuple(t[c] for c in _HIGH_RANK_COLUMNS)),
                RelAtom(lower_rel, tuple(s1[c] for c in lower_cols)),
                RelAtom(lower_rel, tuple(s2[c] for c in lower_cols)),
                Neq(s2[sub_cols[cell_index]], s1[sub_cols[sub_cell]]),
            ]
            head = tuple(t[c] for c in _HIGH_RANK_COLUMNS)
            query = ConjunctiveQuery(head, body, name=f"q[{prefix}]")
            constraints.append(ContainmentConstraint(
                query, Projection.empty(), name=prefix))
    return constraints


def _z_propagation_constraint(i: int) -> ContainmentConstraint:
    """``Ri.Z`` must equal the ``Z`` of the first quadrant (recursively
    the top-left tile)."""
    lower_cols = _row_columns(i - 1)
    t = {c: Var(f"R{i}.z.t.{c}") for c in _HIGH_RANK_COLUMNS}
    s = {c: Var(f"R{i}.z.s.{c}") for c in lower_cols}
    s["id"] = t["id1"]
    body = [
        RelAtom(f"R{i}", tuple(t[c] for c in _HIGH_RANK_COLUMNS)),
        RelAtom(f"R{i - 1}", tuple(s[c] for c in lower_cols)),
        Neq(t["Z"], s["Z"]),
    ]
    query = ConjunctiveQuery(
        tuple(t[c] for c in _HIGH_RANK_COLUMNS), body, name=f"q[R{i}.z]")
    return ContainmentConstraint(query, Projection.empty(), name=f"R{i}.z")


def _probe_constraint(tiling: TilingInstance, n: int,
                      ) -> ContainmentConstraint:
    """``q(w) = [∃ rank-n row, all sub-ids joined down to rank 1,
    Z = t0] ∧ Rb(w) ⊆ Rmb``.

    The paper's ``Qs`` chain selects rank-i rows whose identifiers appear
    at rank i-1; joining every id column of every rank down to rank 1 has
    the same effect for the purposes of the probe (a traceable hypertile
    witnesses the CC firing).
    """
    body: list[Any] = []
    counter = itertools.count()

    def join_down(rank: int, id_var: Var) -> None:
        """Require the row with id *id_var* to exist at *rank*, and
        recursively trace its sub-ids."""
        columns = _row_columns(rank)
        row = {c: Var(f"probe.{rank}.{next(counter)}.{c}")
               for c in columns}
        row["id"] = id_var
        body.append(RelAtom(f"R{rank}",
                            tuple(row[c] for c in columns)))
        if rank > 1:
            for column in ("id1", "id2", "id3", "id4", "id12", "id13",
                           "id24", "id34", "id1234"):
                join_down(rank - 1, row[column])

    top_columns = _row_columns(n)
    top = {c: Var(f"probe.top.{c}") for c in top_columns}
    body.append(RelAtom(f"R{n}", tuple(top[c] for c in top_columns)))
    body.append(Eq(top["Z"], Const(tiling.first_tile)))
    if n > 1:
        for column in ("id1", "id2", "id3", "id4", "id12", "id13",
                       "id24", "id34", "id1234"):
            join_down(n - 1, top[column])
    w = Var("probe.w")
    body.append(RelAtom("Rb", (w,)))
    query = ConjunctiveQuery((w,), body, name="q[probe]")
    return ContainmentConstraint(query, Projection.on("Rmb", (0,)),
                                 name="probe")


# ---------------------------------------------------------------------------
# Witness construction from a solved grid
# ---------------------------------------------------------------------------


def _witness_from_grid(instance: TilingRCQPInstance,
                       grid: Sequence[Sequence[int]]) -> Instance:
    """Store every hypertile (aligned and seam-shifted) of every rank.

    Hypertile ids are canonical: the tuple of the 2×2 sub-ids (tiles at
    rank 1), so identical squares share one id and the key CCs hold by
    construction.
    """
    tiling = instance.tiling
    n = tiling.exponent
    side = tiling.side

    # square(rank) maps top-left coordinates (i, j) to the hypertile id of
    # the 2^rank × 2^rank square anchored there (only anchors whose square
    # fits on the board).
    contents: dict[str, set[tuple]] = {f"R{r}": set()
                                       for r in range(1, n + 1)}
    contents["Rb"] = {(0,)}

    ids: dict[tuple[int, int, int], Any] = {}  # (rank, i, j) -> id

    def square_id(rank: int, i: int, j: int) -> Any:
        key = (rank, i, j)
        if key in ids:
            return ids[key]
        half = 2 ** (rank - 1)
        if rank == 1:
            quadrants = (grid[i][j], grid[i][j + 1],
                         grid[i + 1][j], grid[i + 1][j + 1])
            identifier = ("h1",) + quadrants
            row = (identifier,) + quadrants + (grid[i][j],)
        else:
            quadrants = (
                square_id(rank - 1, i, j),
                square_id(rank - 1, i, j + half),
                square_id(rank - 1, i + half, j),
                square_id(rank - 1, i + half, j + half),
            )
            seams = (
                square_id(rank - 1, i, j + half // 2),
                square_id(rank - 1, i + half // 2, j),
                square_id(rank - 1, i + half // 2, j + half),
                square_id(rank - 1, i + half, j + half // 2),
                square_id(rank - 1, i + half // 2, j + half // 2),
            ) if rank >= 2 else ()
            identifier = (f"h{rank}",) + quadrants
            row = (identifier,) + quadrants + seams + (grid[i][j],)
        ids[key] = identifier
        contents[f"R{rank}"].add(row)
        return identifier

    # Materialize every anchored square of every rank (so that all seam
    # squares referenced at rank r+1 exist at rank r).
    for rank in range(1, n + 1):
        size = 2 ** rank
        for i in range(side - size + 1):
            for j in range(side - size + 1):
                square_id(rank, i, j)

    return Instance(instance.schema, contents, validate=False)
