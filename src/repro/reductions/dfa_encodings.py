"""Theorems 3.1 and 4.1: undecidability encodings via 2-head DFAs and FO
satisfiability.

These constructions witness why RCDP/RCQP become undecidable once FO or FP
enters: they embed undecidable problems (2-head DFA emptiness, FO finite
satisfiability) into completeness questions.  Since no decision procedure
can exist, the library pairs each encoding with the *bounded* procedures of
:mod:`repro.core.bounded` and with direct validators (e.g. "this word is
accepted iff the FP query fires on its relational encoding").

Encodings provided:

* :func:`reduce_dfa_emptiness_to_rcdp` — Theorem 3.1(3): a **fixed** empty
  database and master data, CQ containment constraints ``V1–V3`` enforcing
  well-formed string encodings, and an FP (datalog) query ``Q`` that fires
  exactly on well-formed encodings of accepted inputs.  ``D = ∅`` is
  complete for ``Q`` iff ``L(A) = ∅``.
* :func:`encode_word` — the relational encoding of an input string over
  relations ``P`` (positions carrying 1), ``Pbar`` (positions carrying 0),
  and ``F`` (successor, with the self-loop marking the final position).
* :func:`reduce_fo_satisfiability_to_rcdp` — Theorem 3.1(1): ``D = ∅`` with
  ``V = ∅`` is complete for the Boolean closure of an FO query ``Q`` iff
  ``Q`` is finitely unsatisfiable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.queries.atoms import Neq, RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.datalog import DatalogQuery, Rule
from repro.queries.fo import FOExists, FOQuery
from repro.queries.terms import Const, Var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.solvers.twohead import TwoHeadDFA

__all__ = ["DFAEmptinessRCDPInstance", "reduce_dfa_emptiness_to_rcdp",
           "encode_word", "reduce_fo_satisfiability_to_rcdp",
           "FOSatisfiabilityRCDPInstance"]


@dataclass(frozen=True)
class DFAEmptinessRCDPInstance:
    """The RCDP(FP, CQ) instance for a 2-head DFA's emptiness problem."""

    automaton: TwoHeadDFA
    query: DatalogQuery
    database: Instance
    master: Instance
    constraints: tuple[ContainmentConstraint, ...]
    schema: DatabaseSchema
    master_schema: DatabaseSchema


def _string_schema() -> DatabaseSchema:
    return DatabaseSchema([
        RelationSchema("P", ["pos"]),
        RelationSchema("Pbar", ["pos"]),
        RelationSchema("F", ["pos", "next"]),
    ])


def encode_word(word: str, schema: DatabaseSchema | None = None,
                ) -> Instance:
    """Encode *word* ∈ {0,1}* as a well-formed (P, Pbar, F) instance.

    Positions are the integers ``0..len(word)``; ``F`` chains consecutive
    positions and loops on the final position ``len(word)`` (the paper's
    "unique tuple of the form (k, k)").
    """
    schema = schema or _string_schema()
    length = len(word)
    p_rows = {(i,) for i, symbol in enumerate(word) if symbol == "1"}
    pbar_rows = {(i,) for i, symbol in enumerate(word) if symbol == "0"}
    f_rows = {(i, i + 1) for i in range(length)} | {(length, length)}
    return Instance(schema, {"P": p_rows, "Pbar": pbar_rows, "F": f_rows})


def reduce_dfa_emptiness_to_rcdp(
        automaton: TwoHeadDFA) -> DFAEmptinessRCDPInstance:
    """Build the Theorem 3.1(3) RCDP(FP, CQ) instance for *automaton*.

    ``L(A) = ∅`` iff the (fixed, empty) database is complete for the
    datalog query.  Deciding this is impossible in general — that is the
    theorem — so the instance is consumed by bounded procedures and by the
    direct word-level validator in the tests.

    Containment constraints (all CQ, fixed):

    * ``V1``: no position carries both a 0 and a 1;
    * ``V2``: ``F`` is a function;
    * ``V3``: at most one self-loop (the final-position marker).
    """
    schema = _string_schema()
    master_schema = DatabaseSchema([RelationSchema("Rm1", ["z"])])
    database = Instance.empty(schema)
    master = Instance.empty(master_schema)

    x, y, z = Var("x"), Var("y"), Var("z")
    v1 = ContainmentConstraint(
        ConjunctiveQuery((x,), [RelAtom("P", (x,)),
                                RelAtom("Pbar", (x,))], name="q[V1]"),
        Projection.empty(), name="V1")
    v2 = ContainmentConstraint(
        ConjunctiveQuery((x, y, z),
                         [RelAtom("F", (x, y)), RelAtom("F", (x, z)),
                          Neq(y, z)], name="q[V2]"),
        Projection.empty(), name="V2")
    v3 = ContainmentConstraint(
        ConjunctiveQuery((x, y),
                         [RelAtom("F", (x, x)), RelAtom("F", (y, y)),
                          Neq(x, y)], name="q[V3]"),
        Projection.empty(), name="V3")

    query = _acceptance_program(automaton)
    return DFAEmptinessRCDPInstance(
        automaton=automaton, query=query, database=database, master=master,
        constraints=(v1, v2, v3), schema=schema,
        master_schema=master_schema)


def _alpha_atoms(symbol: str, position: Var, aux: Var) -> list[Any]:
    """The paper's ``α(x)``: what a head reads at *position*.

    * reading '1': ``F(x, aux) ∧ x ≠ aux ∧ P(x)`` — a non-final 1-position;
    * reading '0': same with ``Pbar``;
    * reading ε: ``F(x, x)`` — the final position.
    """
    if symbol == "1":
        return [RelAtom("F", (position, aux)), Neq(position, aux),
                RelAtom("P", (position,))]
    if symbol == "0":
        return [RelAtom("F", (position, aux)), Neq(position, aux),
                RelAtom("Pbar", (position,))]
    return [RelAtom("F", (position, position))]


def _acceptance_program(automaton: TwoHeadDFA) -> DatalogQuery:
    """The FP query: reachability over the transition formulas ``ϕ_δ``,
    seeded at ``(q0, 0, 0)``, accepting at ``q_acc``, conjoined with
    ``Q_ini = ∃x F(0, x)`` and ``Q_fin = ∃x F(x, x)``."""
    rules: list[Rule] = []
    y, z = Var("y"), Var("z")
    yp, zp = Var("yp"), Var("zp")

    rules.append(Rule(RelAtom("Reach", (Const(automaton.initial),
                                        Const(0), Const(0))),
                      [RelAtom("F", (Const(0), Var("w")))]))

    aux_counter = 0
    for (state, read1, read2), (target, move1, move2) in sorted(
            automaton.transitions.items()):
        body: list[Any] = [RelAtom("Reach", (Const(state), y, z))]
        aux1 = Var(f"a{aux_counter}")
        aux2 = Var(f"b{aux_counter}")
        aux_counter += 1
        body.extend(_alpha_atoms(read1, y, aux1))
        body.extend(_alpha_atoms(read2, z, aux2))
        # β: the new head positions.
        if move1 == 1:
            new_y = Var("ny")
            body.append(RelAtom("F", (y, new_y)))
        else:
            new_y = y
        if move2 == 1:
            new_z = Var("nz")
            body.append(RelAtom("F", (z, new_z)))
        else:
            new_z = z
        rules.append(Rule(
            RelAtom("Reach", (Const(target), new_y, new_z)), body))

    # Accept: reached q_acc, and the encoding has initial and final
    # positions (Q_ini ∧ Q_fin).
    rules.append(Rule(
        RelAtom("Accept", (Const(1),)),
        [RelAtom("Reach", (Const(automaton.accepting), y, z)),
         RelAtom("F", (Const(0), Var("w"))),
         RelAtom("F", (Var("u"), Var("u")))]))
    return DatalogQuery(rules, goal="Accept", name="Q[A]")


@dataclass(frozen=True)
class FOSatisfiabilityRCDPInstance:
    """The RCDP(FO, —) instance for an FO query's satisfiability."""

    query: FOQuery
    database: Instance
    master: Instance
    constraints: tuple[ContainmentConstraint, ...]
    schema: DatabaseSchema
    master_schema: DatabaseSchema


def reduce_fo_satisfiability_to_rcdp(
        fo_query: FOQuery, schema: DatabaseSchema,
        ) -> FOSatisfiabilityRCDPInstance:
    """Theorem 3.1(1): the empty database (with ``V = ∅``) is complete for
    the Boolean closure of *fo_query* iff *fo_query* is unsatisfiable over
    finite instances of *schema*.

    Since FO finite satisfiability is undecidable (Trakhtenbrot), so is
    RCDP(FO, CQ) — the library's exact decider refuses the instance, and
    only bounded extension search applies.
    """
    head_vars = sorted(fo_query.head_variables(), key=lambda v: v.name)
    boolean = FOQuery(
        (), FOExists(tuple(head_vars), fo_query.formula)
        if head_vars else fo_query.formula,
        name=f"∃·{fo_query.name}")
    master_schema = DatabaseSchema([RelationSchema("Rm1", ["z"])])
    return FOSatisfiabilityRCDPInstance(
        query=boolean,
        database=Instance.empty(schema),
        master=Instance.empty(master_schema),
        constraints=(),
        schema=schema,
        master_schema=master_schema)
