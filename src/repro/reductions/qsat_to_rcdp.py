"""Theorem 3.6 lower bound: ∀∗∃∗-3SAT ⟶ RCDP(CQ, INDs).

Given ``ϕ = ∀X ∃Y (C1 ∧ ... ∧ Cr)``, the construction produces a fixed-shape
database ``D``, master data ``Dm``, a set ``V`` of INDs, and a CQ query ``Q``
such that **D is complete for Q relative to (Dm, V) iff ϕ is true**.

Following the proof:

* six relations hold the Boolean domain ``I01``, the truth tables of ``∨``,
  ``∧``, ``¬``, the selector table
  ``Ic = {(0,0,1), (0,1,1), (1,0,0), (1,1,1)}`` and the switch relation
  ``R6`` with ``I6 = {(1)}`` in ``D`` but ``Im6 = {(0), (1)}`` in master
  data;
* the INDs ``Ri ⊆ Rmi`` freeze every relation except ``R6``, which may only
  grow by the tuple ``(0)``;
* the query joins a truth assignment for ``X ∪ Y`` against the gate tables
  to compute ``z`` = the truth value of the 3CNF matrix, and selects through
  ``R6(z') × R5(z', z, 1)``: with ``z' = 1`` only satisfying assignments
  project onto ``x̄``; once ``(0)`` enters ``R6``, *every* assignment does.

``D`` is complete iff already with ``z' = 1`` all ``2ⁿ`` assignments of
``X`` appear — i.e. iff ``∀X ∃Y ψ``.

All columns use the finite Boolean domain, matching the paper's ``d_f``;
this keeps the decider's valuation space at the (necessarily exponential)
``2^{#variables}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.constraints.containment import ContainmentConstraint
from repro.constraints.ind import InclusionDependency
from repro.errors import ReproError
from repro.queries.atoms import RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Const, Var
from repro.relational.domain import BOOLEAN
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)
from repro.solvers.qbf import ForallExists3SAT

__all__ = ["ForallExistsRCDPInstance", "reduce_forall_exists_3sat_to_rcdp"]

I01 = {(0,), (1,)}
I_OR = {(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)}
I_AND = {(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)}
I_NOT = {(0, 1), (1, 0)}
I_C = {(0, 0, 1), (0, 1, 1), (1, 0, 0), (1, 1, 1)}


@dataclass(frozen=True)
class ForallExistsRCDPInstance:
    """The RCDP instance produced by the reduction."""

    formula: ForallExists3SAT
    query: ConjunctiveQuery
    database: Instance
    master: Instance
    constraints: tuple[ContainmentConstraint, ...]
    schema: DatabaseSchema
    master_schema: DatabaseSchema


def _bool_relation(name: str, arity: int) -> RelationSchema:
    return RelationSchema(
        name, [Attribute(f"c{i}", BOOLEAN) for i in range(arity)])


def reduce_forall_exists_3sat_to_rcdp(
        formula: ForallExists3SAT) -> ForallExistsRCDPInstance:
    """Build the Theorem 3.6 RCDP instance for *formula*.

    ``formula.is_true()`` iff the returned database is relatively complete
    for the returned query.
    """
    if not formula.universal:
        raise ReproError(
            "the reduction needs at least one universally quantified "
            "variable (the query head would otherwise be empty)")

    schema = DatabaseSchema([
        _bool_relation("R1", 1),   # Boolean domain
        _bool_relation("R2", 3),   # ∨
        _bool_relation("R3", 3),   # ∧
        _bool_relation("R4", 2),   # ¬
        _bool_relation("R5", 3),   # selector Ic
        _bool_relation("R6", 1),   # switch
    ])
    master_schema = DatabaseSchema([
        _bool_relation("Rm1", 1), _bool_relation("Rm2", 3),
        _bool_relation("Rm3", 3), _bool_relation("Rm4", 2),
        _bool_relation("Rm5", 3), _bool_relation("Rm6", 1),
    ])
    database = Instance(schema, {
        "R1": I01, "R2": I_OR, "R3": I_AND, "R4": I_NOT, "R5": I_C,
        "R6": {(1,)},
    })
    master = Instance(master_schema, {
        "Rm1": I01, "Rm2": I_OR, "Rm3": I_AND, "Rm4": I_NOT, "Rm5": I_C,
        "Rm6": I01,
    })
    constraints = tuple(
        InclusionDependency(
            f"R{i}", schema.relation(f"R{i}").attribute_names,
            f"Rm{i}", master_schema.relation(f"Rm{i}").attribute_names,
            name=f"R{i}⊆Rm{i}").to_containment_constraint(
            schema, master_schema)
        for i in range(1, 7))

    query = _build_query(formula)
    return ForallExistsRCDPInstance(
        formula=formula, query=query, database=database, master=master,
        constraints=constraints, schema=schema,
        master_schema=master_schema)


def _build_query(formula: ForallExists3SAT) -> ConjunctiveQuery:
    """The CQ computing ψ's truth value and selecting via R6 × R5.

    Variables: ``v<i>`` for each propositional variable ``i``; ``n<i>`` for
    negated occurrences; ``g…`` for gate outputs; ``zp`` for the switch.
    """
    body: list[Any] = []
    value: dict[int, Var] = {}
    for variable in formula.matrix.variables:
        value[variable] = Var(f"v{variable}")
        body.append(RelAtom("R1", (value[variable],)))
    negation: dict[int, Var] = {}

    def literal_var(literal: int) -> Var:
        variable = abs(literal)
        if literal > 0:
            return value[variable]
        if variable not in negation:
            negation[variable] = Var(f"n{variable}")
            body.append(RelAtom(
                "R4", (value[variable], negation[variable])))
        return negation[variable]

    gate_count = 0

    def gate(table: str, left: Var, right: Var) -> Var:
        nonlocal gate_count
        output = Var(f"g{gate_count}")
        gate_count += 1
        body.append(RelAtom(table, (left, right, output)))
        return output

    clause_outputs: list[Var] = []
    for clause in formula.matrix.clauses:
        literals = [literal_var(l) for l in clause]
        output = literals[0]
        for lit in literals[1:]:
            output = gate("R2", output, lit)
        clause_outputs.append(output)

    z = clause_outputs[0]
    for output in clause_outputs[1:]:
        z = gate("R3", z, output)

    zp = Var("zp")
    body.append(RelAtom("R6", (zp,)))
    body.append(RelAtom("R5", (zp, z, Const(1))))

    head = tuple(value[v] for v in formula.universal)
    return ConjunctiveQuery(head, body, name="Q∀∃")
