"""Executable hardness reductions from the paper's lower-bound proofs."""

from repro.reductions.dfa_encodings import (DFAEmptinessRCDPInstance,
                                            FOSatisfiabilityRCDPInstance,
                                            encode_word,
                                            reduce_dfa_emptiness_to_rcdp,
                                            reduce_fo_satisfiability_to_rcdp)
from repro.reductions.fo_to_rcqp import (FORCQPInstance,
                                         reduce_fo_satisfiability_to_rcqp)
from repro.reductions.qsat_to_rcdp import (ForallExistsRCDPInstance,
                                           reduce_forall_exists_3sat_to_rcdp)
from repro.reductions.qsat_to_rcqp_fixed import (
    ExistsForallRCQPInstance, reduce_exists_forall_3sat_to_rcqp)
from repro.reductions.sat_to_rcqp import (SatRCQPInstance,
                                          reduce_3sat_to_rcqp)
from repro.reductions.tiling_to_rcqp import (TilingRCQPInstance,
                                             reduce_tiling_to_rcqp)

__all__ = [
    "DFAEmptinessRCDPInstance",
    "ExistsForallRCQPInstance",
    "FORCQPInstance",
    "FOSatisfiabilityRCDPInstance",
    "ForallExistsRCDPInstance",
    "SatRCQPInstance",
    "TilingRCQPInstance",
    "encode_word",
    "reduce_3sat_to_rcqp",
    "reduce_dfa_emptiness_to_rcdp",
    "reduce_exists_forall_3sat_to_rcqp",
    "reduce_fo_satisfiability_to_rcdp",
    "reduce_fo_satisfiability_to_rcqp",
    "reduce_forall_exists_3sat_to_rcdp",
    "reduce_tiling_to_rcqp",
]
