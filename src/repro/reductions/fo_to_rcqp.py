"""Theorem 4.1(2): FO satisfiability ⟶ RCQP(CQ, FO).

Given an FO query ``q`` over a schema ``R``, the construction adds a unary
relation ``Ru``, keeps master data empty, and uses a single **FO**
containment constraint that is satisfied by ``(D', Dm)`` exactly when
``q(D') ≠ ∅`` or the ``R``-part of ``D'`` is empty (the paper's
``{()} \\ q' ⊆ ∅``).  The query returns ``Ru`` tagged by nonemptiness of
the ``R``-part:

* if ``q`` is **unsatisfiable**, only databases with an empty ``R``-part
  are partially closed; on those the query is constant-empty, so any such
  database (e.g. the fully empty one) is relatively complete — RCQ is
  nonempty;
* if ``q`` is **satisfiable**, every partially closed database with
  nonempty ``R``-part returns ``{(1)} × Iu``, and ``Iu`` is unconstrained
  — adding a fresh ``Ru``-tuple always changes the answer, so no
  relatively complete database exists.

Since FO (finite) satisfiability is undecidable, so is RCQP(CQ, FO); the
exact deciders refuse the instance, and the tests validate both directions
through the bounded procedures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.errors import ReproError
from repro.queries.atoms import RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.fo import (FOAnd, FOAtom, FOExists, FONot, FOOr,
                              FOQuery)
from repro.queries.terms import Var
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

__all__ = ["FORCQPInstance", "reduce_fo_satisfiability_to_rcqp"]


@dataclass(frozen=True)
class FORCQPInstance:
    """The RCQP(CQ/UCQ, FO) instance produced by the reduction."""

    source_query: FOQuery
    query: Any  # CQ when the source schema has one relation, else UCQ
    master: Instance
    constraints: tuple[ContainmentConstraint, ...]
    schema: DatabaseSchema
    master_schema: DatabaseSchema


def reduce_fo_satisfiability_to_rcqp(
        fo_query: FOQuery, schema: DatabaseSchema) -> FORCQPInstance:
    """Build the Theorem 4.1(2) RCQP instance for *fo_query* over
    *schema*.

    ``RCQ(Q, Dm, V)`` is nonempty iff *fo_query* is finitely
    unsatisfiable over *schema*.
    """
    source_names = list(schema.relation_names)
    if not source_names:
        raise ReproError("the source schema needs at least one relation")
    if "Ru" in schema:
        raise ReproError("the source schema may not contain 'Ru'")
    extended = schema.extended_with(RelationSchema("Ru", ["u"]))
    master_schema = DatabaseSchema([RelationSchema("Rm1", ["z"])])
    master = Instance.empty(master_schema)

    # q' as a Boolean FO query: q fires, or the R-part is empty.  The CC
    # forbids its complement: ¬(∃x̄ q ∨ empty) ⊆ ∅.
    head_vars = sorted(fo_query.head_variables(), key=lambda v: v.name)
    fires = (FOExists(tuple(head_vars), fo_query.formula)
             if head_vars else fo_query.formula)
    empty_part = FOAnd([
        FONot(_nonempty_single(extended, name)) for name in source_names])
    violation = FONot(FOOr([fires, empty_part]))
    constraint = ContainmentConstraint(
        FOQuery((), violation, name="q[V]"), Projection.empty(),
        name="V[q-or-empty]")

    # Q(u): the R-part is nonempty, tagged by Ru.
    u = Var("u")
    disjuncts = []
    for name in source_names:
        relation = schema.relation(name)
        variables = [Var(f"q.{name}.{i}") for i in range(relation.arity)]
        disjuncts.append(ConjunctiveQuery(
            (u,), [RelAtom(name, variables), RelAtom("Ru", (u,))],
            name=f"Q.{name}"))
    query: Any = (disjuncts[0] if len(disjuncts) == 1
                  else UnionOfConjunctiveQueries(disjuncts, name="Q"))

    return FORCQPInstance(
        source_query=fo_query, query=query, master=master,
        constraints=(constraint,), schema=extended,
        master_schema=master_schema)


def _nonempty_single(schema: DatabaseSchema, name: str):
    relation = schema.relation(name)
    variables = [Var(f"ne.{name}.{i}") for i in range(relation.arity)]
    atom = FOAtom(RelAtom(name, variables))
    return FOExists(variables, atom) if variables else atom
