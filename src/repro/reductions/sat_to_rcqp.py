"""Theorem 4.5(1) lower bound: 3SAT ⟶ complement of RCQP(CQ, INDs).

Given a 3SAT instance ``φ = C1 ∧ ... ∧ Cr`` over variables ``x1..xn``, the
construction produces fixed master data ``Dm``, fixed INDs ``V``, and a CQ
``Q`` such that **φ is satisfiable iff RCQ(Q, Dm, V) is empty**.

Following the proof:

* ``Rt(x, x̄)`` is bounded by master ``Rmt = {(0,1), (1,0)}`` — its tuples
  are consistent (value, complement) pairs;
* ``R∨(l1, l2, l3)`` is bounded by the seven satisfying rows of a 3-clause;
* ``R(A, x1, x̄1, ..., xn, x̄n)`` carries a truth assignment tagged by an
  **unconstrained infinite-domain attribute** ``A``;
* ``Q(z)`` returns the tag of every stored assignment that satisfies φ.

If φ is satisfiable, any candidate complete database can be extended with a
fresh tag on a satisfying assignment, changing the answer — no relatively
complete database exists.  If φ is unsatisfiable, ``Q`` is constant-empty
and the empty database is complete.

The output variable ``z`` has an infinite domain and no IND covers it, so
the syntactic decider (conditions E3/E4) answers exactly along this line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.constraints.containment import ContainmentConstraint
from repro.constraints.ind import InclusionDependency
from repro.queries.atoms import RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Var
from repro.relational.domain import BOOLEAN
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)
from repro.solvers.sat import CNF

__all__ = ["SatRCQPInstance", "reduce_3sat_to_rcqp"]

# The seven satisfying assignments of l1 ∨ l2 ∨ l3.
I_SAT3 = {(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)
          if a or b or c}
I_T = {(0, 1), (1, 0)}


@dataclass(frozen=True)
class SatRCQPInstance:
    """The RCQP instance produced by the reduction."""

    cnf: CNF
    query: ConjunctiveQuery
    master: Instance
    constraints: tuple[ContainmentConstraint, ...]
    schema: DatabaseSchema
    master_schema: DatabaseSchema


def reduce_3sat_to_rcqp(cnf: CNF) -> SatRCQPInstance:
    """Build the Theorem 4.5(1) RCQP instance for *cnf*.

    ``dpll_satisfiable(cnf) is not None`` iff ``RCQ(Q, Dm, V)`` is empty.
    Clauses must have (up to) three literals; wider clauses are rejected by
    the ``R∨`` arity.
    """
    n = cnf.num_variables
    assignment_columns: list[Attribute] = [Attribute("A")]
    for v in range(1, n + 1):
        assignment_columns.append(Attribute(f"x{v}", BOOLEAN))
        assignment_columns.append(Attribute(f"nx{v}", BOOLEAN))
    schema = DatabaseSchema([
        RelationSchema("Rt", [Attribute("x", BOOLEAN),
                              Attribute("xbar", BOOLEAN)]),
        RelationSchema("Ror", [Attribute(f"l{i}", BOOLEAN)
                               for i in (1, 2, 3)]),
        RelationSchema("R", assignment_columns),
    ])
    master_schema = DatabaseSchema([
        RelationSchema("Rmt", [Attribute("x", BOOLEAN),
                               Attribute("xbar", BOOLEAN)]),
        RelationSchema("Rmor", [Attribute(f"l{i}", BOOLEAN)
                                for i in (1, 2, 3)]),
    ])
    master = Instance(master_schema, {"Rmt": I_T, "Rmor": I_SAT3})
    constraints = (
        InclusionDependency(
            "Rt", ("x", "xbar"), "Rmt", ("x", "xbar"),
            name="Rt⊆Rmt").to_containment_constraint(schema, master_schema),
        InclusionDependency(
            "Ror", ("l1", "l2", "l3"), "Rmor", ("l1", "l2", "l3"),
            name="R∨⊆Rm∨").to_containment_constraint(schema, master_schema),
    )

    body: list[Any] = []
    z = Var("z")
    positive = {v: Var(f"p{v}") for v in range(1, n + 1)}
    negative = {v: Var(f"m{v}") for v in range(1, n + 1)}
    assignment_terms: list[Any] = [z]
    for v in range(1, n + 1):
        assignment_terms.extend((positive[v], negative[v]))
    body.append(RelAtom("R", assignment_terms))
    for v in range(1, n + 1):
        body.append(RelAtom("Rt", (positive[v], negative[v])))

    def literal_term(literal: int) -> Var:
        return positive[abs(literal)] if literal > 0 \
            else negative[abs(literal)]

    for clause in cnf.clauses:
        literals = list(clause)
        if len(literals) > 3:
            raise ValueError("the reduction encodes 3-clauses only")
        while len(literals) < 3:
            literals.append(literals[-1])  # pad by repetition
        body.append(RelAtom("Ror", tuple(
            literal_term(l) for l in literals)))

    query = ConjunctiveQuery((z,), body, name="Q3SAT")
    return SatRCQPInstance(
        cnf=cnf, query=query, master=master, constraints=constraints,
        schema=schema, master_schema=master_schema)
