"""Corollary 4.6: hardness of RCQP with *fixed* master data and constraints.

The paper proves RCQP(CQ, CQ) Σᵖ₃-complete for fixed ``(Dm, V)`` by a
reduction from ∃∗∀∗∃∗-3SAT.  Its proof sketch, however, relies on a CQ
subquery ``Q1`` that "returns q = 1 when ∃Z C1∧···∧Cr holds …, and q = 0
otherwise" — a *non-monotone* behaviour (answering ``q = 0`` requires
certifying that **no** ``Z`` works) that no conjunctive query can have: a
CQ answer is always witnessed by a homomorphism, so ``(ȳ, 0)`` can only
witness ``∃Z ¬ψ``, never ``∀Z ¬ψ``.  The preprint leaves ``Q1``
underspecified at exactly this point.

This module therefore implements the same machinery for the **∃∗∀∗
fragment** (Σᵖ₂), which the construction does support: given
``ϕ = ∃X ∀Y ψ(X, Y)`` with a 3CNF ψ, it produces *fixed* ``Dm`` and ``V``
(independent of ϕ) plus a CQ ``Q`` such that

    **RCQ(Q, Dm, V) is nonempty iff ϕ is true.**

That still exhibits the headline phenomenon of Corollary 4.6 — fixing
``(Dm, V)`` keeps RCQP well above the coNP of the IND case — with a
construction that is executable and machine-checkable.  The deviation is
recorded in DESIGN.md and EXPERIMENTS.md.

Construction (mirroring the proof's ingredients):

* Boolean gate tables ``R1..R4`` frozen by CCs against master copies;
* ``RX(A, id)``: the stored ∃-assignment, with a key CC ``id → A``
  (expressed as a CQ with empty target, as in the proof);
* ``Rb(q, A)``: the probe relation; the fixed CC ``Rb(1, A) ⊆ Rmb`` bounds
  the infinite tag column ``A`` only when ``q = 1``;
* ``Q(ȳ, A)`` joins the stored assignment (``RX(x_i, i)``), a universal
  assignment (``R1(y_j)``), the deterministic gate evaluation of ψ into
  ``q``, and ``Rb(q, A)``.

When ϕ is true, storing a winning ``X*`` with ``Rb = {(1, 0)}`` yields a
complete database: ``q`` is forced to 1, so fresh ``Rb(0, a)`` tuples never
produce answers and fresh ``Rb(1, a)`` tuples violate the CC.  When ϕ is
false, every stored (or completable) assignment has a falsified universal
branch, so a fresh ``Rb(0, a)`` tuple always mints a brand-new answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.constraints.ind import InclusionDependency
from repro.errors import ReproError
from repro.queries.atoms import Neq, RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Const, Var
from repro.relational.domain import BOOLEAN
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)
from repro.reductions.qsat_to_rcdp import I01, I_AND, I_NOT, I_OR
from repro.solvers.qbf import ExistsForall3SAT

__all__ = ["ExistsForallRCQPInstance", "reduce_exists_forall_3sat_to_rcqp"]


@dataclass(frozen=True)
class ExistsForallRCQPInstance:
    """The fixed-(Dm, V) RCQP instance produced by the reduction."""

    formula: ExistsForall3SAT
    query: ConjunctiveQuery
    master: Instance
    constraints: tuple[ContainmentConstraint, ...]
    schema: DatabaseSchema
    master_schema: DatabaseSchema

    def witness_for(self, assignment: Mapping[int, bool]) -> Instance:
        """The candidate complete database storing *assignment* for the
        ∃-block (the proof's ``D``)."""
        rx = {(int(assignment[v]), v) for v in self.formula.existential}
        return Instance(self.schema, {
            "R1": I01, "R2": I_OR, "R3": I_AND, "R4": I_NOT,
            "RX": rx, "Rb": {(1, 0)},
        })


def _bool_relation(name: str, arity: int) -> RelationSchema:
    return RelationSchema(
        name, [Attribute(f"c{i}", BOOLEAN) for i in range(arity)])


def reduce_exists_forall_3sat_to_rcqp(
        formula: ExistsForall3SAT) -> ExistsForallRCQPInstance:
    """Build the fixed-(Dm, V) RCQP instance for ``∃X ∀Y ψ``.

    ``formula.is_true()`` iff ``RCQ(Q, Dm, V)`` is nonempty.
    """
    if not formula.universal:
        raise ReproError("the reduction needs at least one universal "
                         "variable")
    schema = DatabaseSchema([
        _bool_relation("R1", 1), _bool_relation("R2", 3),
        _bool_relation("R3", 3), _bool_relation("R4", 2),
        RelationSchema("RX", [Attribute("A", BOOLEAN), Attribute("id")]),
        RelationSchema("Rb", [Attribute("q", BOOLEAN), Attribute("A")]),
    ])
    master_schema = DatabaseSchema([
        _bool_relation("Rm1", 1), _bool_relation("Rm2", 3),
        _bool_relation("Rm3", 3), _bool_relation("Rm4", 2),
        RelationSchema("Rmb", ["A"]),
        RelationSchema("Rme", ["z"]),
    ])
    master = Instance(master_schema, {
        "Rm1": I01, "Rm2": I_OR, "Rm3": I_AND, "Rm4": I_NOT,
        "Rmb": {(0,)},
    })

    constraints: list[ContainmentConstraint] = [
        InclusionDependency(
            f"R{i}", schema.relation(f"R{i}").attribute_names,
            f"Rm{i}", master_schema.relation(f"Rm{i}").attribute_names,
            name=f"R{i}⊆Rm{i}").to_containment_constraint(
            schema, master_schema)
        for i in range(1, 5)]
    # V_key: id → A on RX, as a CQ with empty target (full-variable head,
    # as in Proposition 2.1).
    a1, a2, i = Var("a1"), Var("a2"), Var("i")
    key_query = ConjunctiveQuery(
        (a1, i, a2, i),
        [RelAtom("RX", (a1, i)), RelAtom("RX", (a2, i)), Neq(a1, a2)],
        name="q[Vkey]")
    constraints.append(ContainmentConstraint(
        key_query, Projection.empty(), name="Vkey"))
    # q_b: Rb(1, A) ⊆ Rmb — the probe column is bounded only when q = 1.
    a = Var("a")
    probe_query = ConjunctiveQuery(
        (a,), [RelAtom("Rb", (Const(1), a))], name="q[qb]")
    constraints.append(ContainmentConstraint(
        probe_query, Projection.on("Rmb", [0]), name="qb"))

    query = _build_query(formula)
    return ExistsForallRCQPInstance(
        formula=formula, query=query, master=master,
        constraints=tuple(constraints), schema=schema,
        master_schema=master_schema)


def _build_query(formula: ExistsForall3SAT) -> ConjunctiveQuery:
    """``Q(ȳ, A)``: stored ∃-assignment ⋈ universal assignment ⋈ gate
    evaluation of ψ into ``q`` ⋈ ``Rb(q, A)``."""
    body: list[Any] = []
    value: dict[int, Var] = {}
    for v in formula.existential:
        value[v] = Var(f"x{v}")
        body.append(RelAtom("RX", (value[v], Const(v))))
    for v in formula.universal:
        value[v] = Var(f"y{v}")
        body.append(RelAtom("R1", (value[v],)))

    negation: dict[int, Var] = {}

    def literal_var(literal: int) -> Var:
        variable = abs(literal)
        if literal > 0:
            return value[variable]
        if variable not in negation:
            negation[variable] = Var(f"n{variable}")
            body.append(RelAtom(
                "R4", (value[variable], negation[variable])))
        return negation[variable]

    gate_count = 0

    def gate(table: str, left: Var, right: Var) -> Var:
        nonlocal gate_count
        output = Var(f"g{gate_count}")
        gate_count += 1
        body.append(RelAtom(table, (left, right, output)))
        return output

    clause_outputs = []
    for clause in formula.matrix.clauses:
        literals = [literal_var(l) for l in clause]
        output = literals[0]
        for lit in literals[1:]:
            output = gate("R2", output, lit)
        clause_outputs.append(output)
    q = clause_outputs[0]
    for output in clause_outputs[1:]:
        q = gate("R3", q, output)

    tag = Var("Atag")
    body.append(RelAtom("Rb", (q, tag)))
    head = tuple(value[v] for v in formula.universal) + (tag,)
    return ConjunctiveQuery(head, body, name="Q∃∀")
