"""Terms: variables and constants.

Query atoms are built from :class:`Var` and :class:`Const` terms.  The helper
:func:`as_term` coerces raw Python values (strings are **not** auto-promoted
to variables — use :func:`var` explicitly, matching the guide's "explicit is
better than implicit").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from repro.errors import QueryError

__all__ = ["Term", "Var", "Const", "var", "const", "as_term", "vars_of"]


@dataclass(frozen=True, slots=True)
class Var:
    """A query variable, identified by name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise QueryError(
                f"variable name must be a non-empty string, got {self.name!r}")

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True, slots=True)
class Const:
    """A constant term wrapping an arbitrary hashable value."""

    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


Term = Union[Var, Const]


def var(name: str) -> Var:
    """Shorthand constructor for :class:`Var`."""
    return Var(name)


def const(value: Any) -> Const:
    """Shorthand constructor for :class:`Const`."""
    return Const(value)


def as_term(value: Any) -> Term:
    """Coerce *value* into a term.

    ``Var`` and ``Const`` pass through; any other value becomes a constant.
    """
    if isinstance(value, (Var, Const)):
        return value
    return Const(value)


def vars_of(terms: Any) -> set[Var]:
    """Collect the variables in an iterable of terms."""
    return {t for t in terms if isinstance(t, Var)}
