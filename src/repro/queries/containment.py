"""Classic CQ containment via Chandra–Merlin homomorphisms.

``Q1 ⊆ Q2`` holds iff there is a homomorphism from ``Q2`` to ``Q1``
(equivalently, iff ``u_{Q1} ∈ Q2(canonical database of Q1)``).  The paper
cites Chandra & Merlin [1977] for the NP membership of answer testing; we
provide the containment utilities both because they are generally useful for
query analysis and because tests use them to sanity-check the tableau and
evaluation machinery against each other.

For queries **with inequality atoms** containment is no longer characterized
by a single canonical database (it is Πᵖ₂-complete), so the tests refuse
them by default.  Callers that merely *consume* containment facts — the
static analyzer's subsumption and minimization rules — pass
``on_inequality="unknown"`` / ``"skip"`` to degrade gracefully instead:
:func:`is_contained_in` then answers ``None`` ("unknown") and
:func:`minimize` returns the query unchanged.
"""

from __future__ import annotations

from typing import Any

from repro.errors import QueryError, UnsatisfiableQueryError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.tableau import Tableau
from repro.relational.domain import FreshValueSupply
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema
from repro.queries.terms import Var

__all__ = ["canonical_database", "is_contained_in", "is_equivalent",
           "is_ucq_contained_in", "minimize"]

#: Accepted ``on_inequality`` modes: ``"raise"`` (default, historical
#: behavior), ``"unknown"`` (containment tests return ``None``), and
#: ``"skip"`` (:func:`minimize` returns its input unchanged).
_INEQUALITY_MODES = frozenset({"raise", "unknown", "skip"})


def canonical_database(query: ConjunctiveQuery, schema: DatabaseSchema,
                       ) -> tuple[Instance, tuple]:
    """Build the canonical (frozen) database of *query*.

    Variables are frozen to distinct fresh values; the function returns the
    frozen instance together with the frozen head tuple.  Raises
    :class:`UnsatisfiableQueryError` if the query's equalities contradict.
    """
    tableau = Tableau(query, schema)
    if not tableau.satisfiable:
        raise UnsatisfiableQueryError(
            f"query {query.name!r} is unsatisfiable; it has no canonical "
            f"database")
    supply = FreshValueSupply(prefix=f"canon.{query.name}")
    valuation: dict[Var, Any] = {
        v: supply.take(v.name) for v in tableau.ordered_variables()}
    grouped: dict[str, set[tuple]] = {}
    for name, row in tableau.instantiate(valuation):
        grouped.setdefault(name, set()).add(row)
    # validate=False: frozen variables are FreshValues, which may land in
    # finite-domain columns; the classic construction ignores domains.
    instance = Instance(schema, grouped, validate=False)
    head = tableau.summary_under(valuation)
    return instance, head


def _check_mode(on_inequality: str) -> None:
    if on_inequality not in _INEQUALITY_MODES:
        raise ValueError(
            f"on_inequality must be one of {sorted(_INEQUALITY_MODES)}, "
            f"got {on_inequality!r}")


def _has_inequality(query: ConjunctiveQuery) -> bool:
    from repro.queries.atoms import Neq

    return any(isinstance(c, Neq) for c in query.comparisons)


def _require_inequality_free(query: ConjunctiveQuery) -> None:
    if _has_inequality(query):
        raise QueryError(
            f"containment test supports inequality-free CQs only; "
            f"{query.name!r} uses ≠ (containment with ≠ is "
            f"Πᵖ₂-complete and needs a different algorithm)")


def is_contained_in(sub: ConjunctiveQuery, sup: ConjunctiveQuery,
                    schema: DatabaseSchema, *,
                    on_inequality: str = "raise") -> bool | None:
    """Decide ``sub ⊆ sup`` for inequality-free CQs (Chandra–Merlin).

    An unsatisfiable *sub* is contained in everything; containment in an
    unsatisfiable *sup* holds only if *sub* is unsatisfiable too.

    With ``on_inequality="unknown"``, inequality-bearing inputs yield
    ``None`` ("unknown") instead of raising — the sound choice for
    consumers that only act on definite answers.
    """
    _check_mode(on_inequality)
    if _has_inequality(sub) or _has_inequality(sup):
        if on_inequality == "raise":
            _require_inequality_free(sub)
            _require_inequality_free(sup)
        return None
    if sub.arity != sup.arity:
        raise QueryError(
            f"containment needs equal arities, got {sub.arity} and "
            f"{sup.arity}")
    try:
        frozen, head = canonical_database(sub, schema)
    except UnsatisfiableQueryError:
        return True
    return head in sup.evaluate(frozen)


def is_equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery,
                  schema: DatabaseSchema, *,
                  on_inequality: str = "raise") -> bool | None:
    """Mutual containment (``None`` when either direction is unknown)."""
    forward = is_contained_in(left, right, schema,
                              on_inequality=on_inequality)
    if forward is None:
        return None
    if not forward:
        return False
    return is_contained_in(right, left, schema,
                           on_inequality=on_inequality)


def minimize(query: ConjunctiveQuery, schema: DatabaseSchema, *,
             on_inequality: str = "raise") -> ConjunctiveQuery:
    """Compute a minimal equivalent CQ (the *core*), for inequality-free
    queries.

    Classic Chandra–Merlin minimization: repeatedly drop a relation atom
    whenever the shrunken query is still equivalent to the original (it is
    always contained in the original; only the converse needs checking).
    The result has no redundant atoms; it is unique up to variable
    renaming.

    With ``on_inequality="skip"``, an inequality-bearing query is
    returned unchanged (folding atoms under ≠ can change the query, so
    no minimization is attempted).
    """
    _check_mode(on_inequality)
    if _has_inequality(query):
        if on_inequality == "raise":
            _require_inequality_free(query)
        return query
    current_atoms = list(query.relation_atoms)
    comparisons = [c for c in query.body
                   if c not in query.relation_atoms]
    changed = True
    while changed:
        changed = False
        for index in range(len(current_atoms)):
            candidate_atoms = (current_atoms[:index]
                               + current_atoms[index + 1:])
            if not candidate_atoms:
                continue
            try:
                candidate = ConjunctiveQuery(
                    query.head, candidate_atoms + comparisons,
                    name=query.name)
            except QueryError:
                continue  # removal broke safety; atom is needed
            # original ⊆ candidate always holds (fewer atoms is more
            # general); equivalence needs candidate ⊆ original.
            if is_contained_in(candidate, query, schema):
                current_atoms = candidate_atoms
                changed = True
                break
    return ConjunctiveQuery(query.head, current_atoms + comparisons,
                            name=query.name)


def is_ucq_contained_in(sub: Any, sup: Any, schema: DatabaseSchema, *,
                        on_inequality: str = "raise") -> bool | None:
    """Sagiv–Yannakakis containment for unions of conjunctive queries.

    ``Q1 ⊆ Q2`` holds iff every disjunct of ``Q1`` is contained in ``Q2``,
    which the canonical-database test decides: freeze the disjunct and
    check its head against the *whole* union ``Q2``.  Plain CQs are
    accepted on either side (a CQ is a one-disjunct union).  Inequality
    atoms are rejected as in :func:`is_contained_in` (or yield ``None``
    under ``on_inequality="unknown"``).
    """
    _check_mode(on_inequality)
    sub_disjuncts = sub.to_cq_disjuncts()
    sup_disjuncts = sup.to_cq_disjuncts()
    if any(_has_inequality(d) for d in sub_disjuncts + sup_disjuncts):
        if on_inequality == "raise":
            for disjunct in sub_disjuncts + sup_disjuncts:
                _require_inequality_free(disjunct)
        return None
    if sub.arity != sup.arity:
        raise QueryError(
            f"containment needs equal arities, got {sub.arity} and "
            f"{sup.arity}")
    for disjunct in sub_disjuncts:
        try:
            frozen, head = canonical_database(disjunct, schema)
        except UnsatisfiableQueryError:
            continue  # an unsatisfiable disjunct is contained in anything
        if not any(head in other.evaluate(frozen)
                   for other in sup_disjuncts):
            return False
    return True
