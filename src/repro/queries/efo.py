"""Positive existential first-order queries (∃FO⁺).

∃FO⁺ is built from atomic formulas (relation atoms, ``=``, ``≠``) by closing
under conjunction, disjunction, and existential quantification
(Section 2.1).  An ∃FO⁺ query is equivalent to a union of conjunctive
queries of possibly exponential size; :meth:`EFOQuery.to_ucq` performs that
unfolding (after rectifying bound variables so distinct quantifiers never
capture each other), and evaluation goes through the unfolded UCQ, computed
once and cached.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import QueryError
from repro.queries.atoms import Eq, Neq, RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Const, Term, Var, as_term
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema

__all__ = ["Formula", "AtomF", "And", "Or", "Exists", "EFOQuery",
           "atom_f", "and_", "or_", "exists"]


class Formula:
    """Base class of ∃FO⁺ formula nodes."""

    def free_variables(self) -> set[Var]:
        raise NotImplementedError

    def constants(self) -> set[Any]:
        raise NotImplementedError

    def relations_used(self) -> set[str]:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class AtomF(Formula):
    """A leaf node wrapping a relation atom or comparison."""

    atom: Any

    def __post_init__(self) -> None:
        if not isinstance(self.atom, (RelAtom, Eq, Neq)):
            raise QueryError(
                f"∃FO⁺ leaves must be relation atoms or comparisons, "
                f"got {type(self.atom).__name__}")

    def free_variables(self) -> set[Var]:
        return self.atom.variables()

    def constants(self) -> set[Any]:
        return self.atom.constants()

    def relations_used(self) -> set[str]:
        if isinstance(self.atom, RelAtom):
            return {self.atom.relation}
        return set()

    def __repr__(self) -> str:
        return repr(self.atom)


@dataclass(frozen=True, slots=True)
class And(Formula):
    """Conjunction of subformulas."""

    parts: tuple[Formula, ...]

    def __init__(self, parts: Iterable[Formula]) -> None:
        object.__setattr__(self, "parts", tuple(parts))
        if not self.parts:
            raise QueryError("empty conjunction")

    def free_variables(self) -> set[Var]:
        return set().union(*(p.free_variables() for p in self.parts))

    def constants(self) -> set[Any]:
        return set().union(*(p.constants() for p in self.parts))

    def relations_used(self) -> set[str]:
        return set().union(*(p.relations_used() for p in self.parts))

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class Or(Formula):
    """Disjunction of subformulas."""

    parts: tuple[Formula, ...]

    def __init__(self, parts: Iterable[Formula]) -> None:
        object.__setattr__(self, "parts", tuple(parts))
        if not self.parts:
            raise QueryError("empty disjunction")

    def free_variables(self) -> set[Var]:
        return set().union(*(p.free_variables() for p in self.parts))

    def constants(self) -> set[Any]:
        return set().union(*(p.constants() for p in self.parts))

    def relations_used(self) -> set[str]:
        return set().union(*(p.relations_used() for p in self.parts))

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class Exists(Formula):
    """Existential quantification ``∃x1...xk φ``."""

    variables: tuple[Var, ...]
    body: Formula

    def __init__(self, variables: Iterable[Var], body: Formula) -> None:
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "body", body)
        if not all(isinstance(v, Var) for v in self.variables):
            raise QueryError("Exists binds variables only")

    def free_variables(self) -> set[Var]:
        return self.body.free_variables() - set(self.variables)

    def constants(self) -> set[Any]:
        return self.body.constants()

    def relations_used(self) -> set[str]:
        return self.body.relations_used()

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"∃{names}.{self.body!r}"


def atom_f(atom: Any) -> AtomF:
    """Wrap an atom as a formula leaf."""
    return AtomF(atom)


def and_(*parts: Formula) -> And:
    """Conjunction shorthand."""
    return And(parts)


def or_(*parts: Formula) -> Or:
    """Disjunction shorthand."""
    return Or(parts)


def exists(variables: Iterable[Var], body: Formula) -> Exists:
    """Existential-quantification shorthand."""
    return Exists(variables, body)


def _rectify(formula: Formula, renaming: dict[Var, Var],
             counter: itertools.count) -> Formula:
    """Rename bound variables apart so DNF conversion cannot capture."""
    if isinstance(formula, AtomF):
        atom = formula.atom

        def sub(term: Term) -> Term:
            if isinstance(term, Var):
                return renaming.get(term, term)
            return term

        if isinstance(atom, RelAtom):
            return AtomF(RelAtom(atom.relation, [sub(t) for t in atom.terms]))
        return AtomF(type(atom)(sub(atom.left), sub(atom.right)))
    if isinstance(formula, (And, Or)):
        parts = tuple(_rectify(p, renaming, counter) for p in formula.parts)
        return type(formula)(parts)
    if isinstance(formula, Exists):
        inner = dict(renaming)
        fresh_vars = []
        for v in formula.variables:
            fresh = Var(f"{v.name}#{next(counter)}")
            inner[v] = fresh
            fresh_vars.append(fresh)
        return Exists(fresh_vars, _rectify(formula.body, inner, counter))
    raise QueryError(f"unknown formula node {type(formula).__name__}")


def _dnf(formula: Formula) -> list[list[Any]]:
    """Convert a rectified formula to a list of conjunctions of atoms."""
    if isinstance(formula, AtomF):
        return [[formula.atom]]
    if isinstance(formula, Exists):
        # After rectification the quantifier can simply be dropped: bound
        # variables are unique, and CQ normal form quantifies non-head
        # variables implicitly.
        return _dnf(formula.body)
    if isinstance(formula, Or):
        result: list[list[Any]] = []
        for part in formula.parts:
            result.extend(_dnf(part))
        return result
    if isinstance(formula, And):
        product: list[list[Any]] = [[]]
        for part in formula.parts:
            branches = _dnf(part)
            product = [combo + branch
                       for combo in product for branch in branches]
        return product
    raise QueryError(f"unknown formula node {type(formula).__name__}")


class EFOQuery:
    """An ∃FO⁺ query: a head of output terms over a positive formula.

    Free variables of the formula that are not in the head are implicitly
    existentially quantified (as in CQ normal form).
    """

    language = "EFO"

    __slots__ = ("name", "head", "formula", "_ucq_cache")

    def __init__(self, head: Sequence[Any], formula: Formula,
                 name: str = "Q") -> None:
        self.name = name
        self.head = tuple(as_term(t) for t in head)
        if not isinstance(formula, Formula):
            raise QueryError(
                f"expected Formula, got {type(formula).__name__}")
        self.formula = formula
        self._ucq_cache: UnionOfConjunctiveQueries | None = None

    @property
    def arity(self) -> int:
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        return not self.head

    def head_variables(self) -> set[Var]:
        return {t for t in self.head if isinstance(t, Var)}

    def variables(self) -> set[Var]:
        return self.head_variables() | self.formula.free_variables()

    def constants(self) -> set[Any]:
        consts = {t.value for t in self.head if isinstance(t, Const)}
        return consts | self.formula.constants()

    def relations_used(self) -> set[str]:
        return self.formula.relations_used()

    def validate(self, schema: DatabaseSchema) -> None:
        self.to_ucq().validate(schema)

    def to_ucq(self) -> UnionOfConjunctiveQueries:
        """Unfold into an equivalent UCQ (computed once, then cached).

        Disjuncts whose safety check fails (a head variable that the branch
        never binds) are rejected with :class:`QueryError`, mirroring the
        safe-query requirement for CQs.
        """
        if self._ucq_cache is None:
            counter = itertools.count()
            rectified = _rectify(self.formula, {}, counter)
            disjuncts = []
            for index, atoms in enumerate(_dnf(rectified)):
                disjuncts.append(ConjunctiveQuery(
                    self.head, atoms, name=f"{self.name}.{index}"))
            self._ucq_cache = UnionOfConjunctiveQueries(
                disjuncts, name=self.name)
        return self._ucq_cache

    def to_cq_disjuncts(self) -> list[ConjunctiveQuery]:
        return self.to_ucq().to_cq_disjuncts()

    def evaluate(self, instance: Instance, *,
                 context: Any = None) -> frozenset[tuple]:
        if context is not None:
            return context.evaluate(self, instance)
        return self.to_ucq().evaluate(instance)

    def evaluate_naive(self, instance: Instance) -> frozenset[tuple]:
        """Backtracking oracle over the unfolded UCQ."""
        return self.to_ucq().evaluate_naive(instance)

    def holds_in(self, instance: Instance, *, context: Any = None) -> bool:
        if context is not None:
            return context.holds(self, instance)
        return self.to_ucq().holds_in(instance)

    def __repr__(self) -> str:
        head = ", ".join(repr(t) for t in self.head)
        return f"{self.name}({head}) := {self.formula!r}"
