"""Unions of conjunctive queries (UCQ).

``Q = Q1 ∪ ... ∪ Qk`` where each ``Qi`` is a CQ of the same arity
(Section 2.1).  Evaluation is the union of the disjunct answers.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import QueryError
from repro.queries.cq import ConjunctiveQuery
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema

__all__ = ["UnionOfConjunctiveQueries", "ucq"]


class UnionOfConjunctiveQueries:
    """A union of same-arity conjunctive queries."""

    language = "UCQ"

    __slots__ = ("name", "disjuncts")

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery],
                 name: str = "Q") -> None:
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise QueryError("a UCQ needs at least one disjunct")
        arity = disjuncts[0].arity
        for disjunct in disjuncts:
            if not isinstance(disjunct, ConjunctiveQuery):
                raise QueryError(
                    f"UCQ disjuncts must be CQs, got "
                    f"{type(disjunct).__name__}")
            if disjunct.arity != arity:
                raise QueryError(
                    f"UCQ disjuncts must share one arity; got {arity} "
                    f"and {disjunct.arity}")
        self.name = name
        self.disjuncts = disjuncts

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    @property
    def is_boolean(self) -> bool:
        return self.arity == 0

    def variables(self):
        result = set()
        for disjunct in self.disjuncts:
            result |= disjunct.variables()
        return result

    def constants(self) -> set:
        result: set = set()
        for disjunct in self.disjuncts:
            result |= disjunct.constants()
        return result

    def relations_used(self) -> set[str]:
        result: set[str] = set()
        for disjunct in self.disjuncts:
            result |= disjunct.relations_used()
        return result

    def validate(self, schema: DatabaseSchema) -> None:
        for disjunct in self.disjuncts:
            disjunct.validate(schema)

    def to_cq_disjuncts(self) -> list[ConjunctiveQuery]:
        return list(self.disjuncts)

    def evaluate(self, instance: Instance, *,
                 context: Any = None) -> frozenset[tuple]:
        if context is not None:
            return context.evaluate(self, instance)
        answers: set[tuple] = set()
        for disjunct in self.disjuncts:
            answers |= disjunct.evaluate(instance)
        return frozenset(answers)

    def evaluate_naive(self, instance: Instance) -> frozenset[tuple]:
        """Backtracking oracle: union of the disjuncts' naive answers."""
        answers: set[tuple] = set()
        for disjunct in self.disjuncts:
            answers |= disjunct.evaluate_naive(instance)
        return frozenset(answers)

    def holds_in(self, instance: Instance, *, context: Any = None) -> bool:
        if context is not None:
            return context.holds(self, instance)
        return any(d.holds_in(instance) for d in self.disjuncts)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, UnionOfConjunctiveQueries)
                and self.disjuncts == other.disjuncts)

    def __hash__(self) -> int:
        return hash(self.disjuncts)

    def __repr__(self) -> str:
        return " ∪ ".join(repr(d) for d in self.disjuncts)


def ucq(disjuncts: Iterable[ConjunctiveQuery],
        name: str = "Q") -> UnionOfConjunctiveQueries:
    """Shorthand constructor for :class:`UnionOfConjunctiveQueries`."""
    return UnionOfConjunctiveQueries(tuple(disjuncts), name=name)
