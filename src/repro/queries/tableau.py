"""Tableau representation ``(T_Q, u_Q)`` of conjunctive queries.

Section 3.2 of the paper represents a CQ ``Q`` as a tableau query
``(T_Q, u_Q)``: equality atoms are folded in — every variable of an equality
class ``eq(x)`` is replaced by one canonical variable, and classes pinned to
a constant are substituted by that constant — while inequality atoms are kept
as side conditions on valuations.  A query whose equalities are contradictory
(``x = 'a' ∧ x = 'b'``, or ``c ≠ c``) is *unsatisfiable* and is skipped by
the deciders.

A tableau also knows, for each of its variables, the *effective domain*: the
intersection of the finite attribute domains of the columns the variable
occurs in (or the infinite domain when it only occurs in infinite columns).
This drives the per-variable active domains ``adom(y)`` of the deciders.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import QueryError
from repro.queries.atoms import Eq, Neq
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Const, Term, Var
from repro.relational.domain import Domain, FiniteDomain
from repro.relational.schema import DatabaseSchema

__all__ = ["Tableau", "TableauRow"]

Valuation = Mapping[Var, Any]


class TableauRow:
    """One tuple template of the tableau: a relation name plus terms."""

    __slots__ = ("relation", "terms")

    def __init__(self, relation: str, terms: tuple[Term, ...]) -> None:
        self.relation = relation
        self.terms = terms

    def variables(self) -> set[Var]:
        return {t for t in self.terms if isinstance(t, Var)}

    def is_ground(self) -> bool:
        """True when the row contains no variables (a constant tuple)."""
        return all(isinstance(t, Const) for t in self.terms)

    def instantiate(self, valuation: Valuation) -> tuple:
        """Apply *valuation*, producing a concrete database tuple."""
        return tuple(
            t.value if isinstance(t, Const) else valuation[t]
            for t in self.terms)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TableauRow)
                and self.relation == other.relation
                and self.terms == other.terms)

    def __hash__(self) -> int:
        return hash((self.relation, self.terms))

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}[{inner}]"


class _UnionFind:
    """Union-find over variables, with an optional constant pin per class."""

    def __init__(self) -> None:
        self._parent: dict[Var, Var] = {}
        self._pin: dict[Var, Any] = {}

    def _ensure(self, v: Var) -> None:
        if v not in self._parent:
            self._parent[v] = v

    def find(self, v: Var) -> Var:
        self._ensure(v)
        root = v
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[v] != root:
            self._parent[v], v = root, self._parent[v]
        return root

    def union(self, a: Var, b: Var) -> bool:
        """Merge classes; return False on pin conflict (unsatisfiable)."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        pin_a = self._pin.get(ra, _NO_PIN)
        pin_b = self._pin.get(rb, _NO_PIN)
        if pin_a is not _NO_PIN and pin_b is not _NO_PIN and pin_a != pin_b:
            return False
        self._parent[rb] = ra
        if pin_b is not _NO_PIN:
            self._pin[ra] = pin_b
        return True

    def pin(self, v: Var, value: Any) -> bool:
        """Pin the class of *v* to *value*; False on conflict."""
        root = self.find(v)
        existing = self._pin.get(root, _NO_PIN)
        if existing is not _NO_PIN:
            return existing == value
        self._pin[root] = value
        return True

    def resolve(self, v: Var) -> Term:
        """Canonical term of *v*: its pin constant, or class representative."""
        root = self.find(v)
        pin = self._pin.get(root, _NO_PIN)
        if pin is not _NO_PIN:
            return Const(pin)
        return root


class _NoPin:
    __slots__ = ()


_NO_PIN = _NoPin()


class Tableau:
    """The tableau ``(T_Q, u_Q)`` of a satisfiable-or-not CQ.

    Attributes
    ----------
    rows:
        Tuple templates, one per relation atom of the query (after equality
        folding).
    summary:
        The output template ``u_Q`` (head after folding).
    inequalities:
        Residual ``≠`` side conditions as ``(term, term)`` pairs; pairs of
        distinct constants (trivially true) are dropped during construction.
    satisfiable:
        False when equality folding or a ground inequality produced a
        contradiction — ``Q(D)`` is then empty on every ``D``.
    """

    __slots__ = ("query", "rows", "summary", "inequalities", "satisfiable",
                 "_domains")

    def __init__(self, query: ConjunctiveQuery,
                 schema: DatabaseSchema) -> None:
        query.validate(schema)
        self.query = query
        uf = _UnionFind()
        consistent = True
        for comparison in query.comparisons:
            if not isinstance(comparison, Eq):
                continue
            left, right = comparison.left, comparison.right
            if isinstance(left, Var) and isinstance(right, Var):
                consistent &= uf.union(left, right)
            elif isinstance(left, Var):
                consistent &= uf.pin(left, right.value)
            elif isinstance(right, Var):
                consistent &= uf.pin(right, left.value)
            else:
                consistent &= (left.value == right.value)

        def canon(term: Term) -> Term:
            if isinstance(term, Var):
                return uf.resolve(term)
            return term

        self.rows = tuple(
            TableauRow(atom.relation,
                       tuple(canon(t) for t in atom.terms))
            for atom in query.relation_atoms)
        self.summary = tuple(canon(t) for t in query.head)

        inequalities: list[tuple[Term, Term]] = []
        for comparison in query.comparisons:
            if not isinstance(comparison, Neq):
                continue
            left, right = canon(comparison.left), canon(comparison.right)
            if isinstance(left, Const) and isinstance(right, Const):
                if left.value == right.value:
                    consistent = False
                # distinct constants: trivially true, drop
            elif left == right:
                consistent = False  # x ≠ x after folding
            else:
                inequalities.append((left, right))
        self.inequalities = tuple(inequalities)
        self.satisfiable = consistent
        self._domains = self._column_domains(schema)

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------

    def _column_domains(self, schema: DatabaseSchema) -> dict[Var, Domain]:
        domains: dict[Var, Domain] = {}
        for row in self.rows:
            relation = schema.relation(row.relation)
            for pos, term in enumerate(row.terms):
                if not isinstance(term, Var):
                    continue
                domain = relation.domain_at(pos)
                current = domains.get(term)
                if current is None or current.is_infinite:
                    domains[term] = domain
                elif not domain.is_infinite:
                    intersection = (current.values  # type: ignore[attr-defined]
                                    & domain.values)
                    if len(intersection) < 2:
                        # Degenerate; keep the smaller original domain and
                        # let valuation filtering reject out-of-domain values.
                        domains[term] = (current
                                         if len(current.values) <= len(domain.values)
                                         else domain)
                    else:
                        domains[term] = FiniteDomain(
                            intersection,
                            name=f"{current!r}∩{domain!r}")
        return domains

    def domain_of(self, variable: Var) -> Domain:
        """Effective domain of *variable* (see module docstring)."""
        try:
            return self._domains[variable]
        except KeyError:
            raise QueryError(
                f"{variable!r} is not a variable of this tableau") from None

    def has_finite_domain(self, variable: Var) -> bool:
        """True when *variable* occurs in a finite-domain column."""
        return not self.domain_of(variable).is_infinite

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def variables(self) -> set[Var]:
        """Variables occurring in the tableau rows."""
        result: set[Var] = set()
        for row in self.rows:
            result |= row.variables()
        return result

    def ordered_variables(self) -> tuple[Var, ...]:
        """Deterministic variable order (for reproducible enumeration)."""
        return tuple(sorted(self.variables(), key=lambda v: v.name))

    def summary_variables(self) -> set[Var]:
        return {t for t in self.summary if isinstance(t, Var)}

    def constants(self) -> set[Any]:
        """All constants in rows, summary, and inequalities."""
        values: set[Any] = set()
        for row in self.rows:
            values |= {t.value for t in row.terms if isinstance(t, Const)}
        values |= {t.value for t in self.summary if isinstance(t, Const)}
        for left, right in self.inequalities:
            for term in (left, right):
                if isinstance(term, Const):
                    values.add(term.value)
        return values

    def ground_rows(self) -> list[TableauRow]:
        """Rows with no variables (the 'constant tuples' of Prop. 4.2)."""
        return [row for row in self.rows if row.is_ground()]

    def columns_of(self, variable: Var) -> Iterator[tuple[str, int]]:
        """Yield ``(relation, position)`` pairs where *variable* occurs."""
        for row in self.rows:
            for pos, term in enumerate(row.terms):
                if term == variable:
                    yield row.relation, pos

    # ------------------------------------------------------------------
    # Valuations
    # ------------------------------------------------------------------

    def respects_inequalities(self, valuation: Valuation) -> bool:
        """True when all residual ``≠`` conditions hold under *valuation*.

        Together with per-variable domain membership, this is exactly the
        paper's *valid valuation* condition: ``Q(μ(T_Q))`` is nonempty iff μ
        observes the inequalities.
        """

        def value(term: Term) -> Any:
            return term.value if isinstance(term, Const) else valuation[term]

        return all(value(left) != value(right)
                   for left, right in self.inequalities)

    def instantiate(self, valuation: Valuation) -> list[tuple[str, tuple]]:
        """Return the facts ``μ(T_Q)`` as ``(relation, tuple)`` pairs."""
        return [(row.relation, row.instantiate(valuation))
                for row in self.rows]

    def summary_under(self, valuation: Valuation) -> tuple:
        """Return ``μ(u_Q)``."""
        return tuple(
            t.value if isinstance(t, Const) else valuation[t]
            for t in self.summary)

    def __repr__(self) -> str:
        rows = ", ".join(repr(r) for r in self.rows)
        summary = ", ".join(repr(t) for t in self.summary)
        neqs = ""
        if self.inequalities:
            neqs = " | " + ", ".join(
                f"{l!r}≠{r!r}" for l, r in self.inequalities)
        sat = "" if self.satisfiable else " (unsatisfiable)"
        return f"Tableau[{rows} ⊢ ({summary}){neqs}]{sat}"
