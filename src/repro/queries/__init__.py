"""Query languages of the paper: CQ, UCQ, ∃FO⁺, FO, and datalog (FP)."""

from repro.queries.atoms import Eq, Neq, RelAtom, eq, neq, rel
from repro.queries.cq import ConjunctiveQuery, cq
from repro.queries.datalog import DatalogQuery, Rule, rule
from repro.queries.efo import (And, AtomF, EFOQuery, Exists, Or, and_,
                               atom_f, exists, or_)
from repro.queries.fo import (FOAnd, FOAtom, FOExists, FOForall, FOImplies,
                              FONot, FOOr, FOQuery, fo_and, fo_atom,
                              fo_exists, fo_forall, fo_implies, fo_not,
                              fo_or)
from repro.queries.tableau import Tableau, TableauRow
from repro.queries.terms import Const, Var, as_term, const, var
from repro.queries.ucq import UnionOfConjunctiveQueries, ucq

__all__ = [
    "And", "AtomF", "ConjunctiveQuery", "Const", "DatalogQuery", "EFOQuery",
    "Eq", "Exists", "FOAnd", "FOAtom", "FOExists", "FOForall", "FOImplies",
    "FONot", "FOOr", "FOQuery", "Neq", "Or", "RelAtom", "Rule", "Tableau",
    "TableauRow", "UnionOfConjunctiveQueries", "Var",
    "and_", "as_term", "atom_f", "const", "cq", "eq", "exists", "fo_and",
    "fo_atom", "fo_exists", "fo_forall", "fo_implies", "fo_not", "fo_or",
    "neq", "or_", "rel", "rule", "ucq", "var",
]
