"""Conjunctive queries (CQ) with equality and inequality.

A conjunctive query is built from relation atoms, ``=`` and ``≠``, closed
under conjunction and existential quantification (Section 2.1).  We use the
standard rule-like normal form: a head tuple of output terms plus a body that
is a set of atoms; all body variables not in the head are implicitly
existentially quantified.

Evaluation is by backtracking join over the instance, with eager checking of
comparisons as soon as both sides are bound.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import EvaluationError, QueryError
from repro.queries.atoms import Eq, Neq, RelAtom
from repro.queries.terms import Const, Term, Var, as_term
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema

__all__ = ["ConjunctiveQuery", "cq"]

Binding = dict[Var, Any]


class ConjunctiveQuery:
    """A conjunctive query ``Q(head) :- body``.

    *head* is a sequence of terms (variables or constants); *body* a sequence
    of :class:`RelAtom`, :class:`Eq`, and :class:`Neq` atoms.  A query with an
    empty head is Boolean: it evaluates to ``{()}`` (true) or ``∅`` (false).

    Safety requirement: every variable occurring in the head or in a
    comparison must also occur in some relation atom, so that evaluation
    ranges over the instance only.  (The hardness constructions in the paper
    all satisfy this.)
    """

    language = "CQ"

    __slots__ = ("name", "head", "body", "_rel_atoms", "_comparisons",
                 "_plan_cache")

    def __init__(self, head: Sequence[Any], body: Iterable[Any],
                 name: str = "Q") -> None:
        self.name = name
        self._plan_cache = None
        self.head = tuple(as_term(t) for t in head)
        self.body = tuple(body)
        rel_atoms: list[RelAtom] = []
        comparisons: list[Eq | Neq] = []
        for atom in self.body:
            if isinstance(atom, RelAtom):
                rel_atoms.append(atom)
            elif isinstance(atom, (Eq, Neq)):
                comparisons.append(atom)
            else:
                raise QueryError(
                    f"unsupported atom in CQ body: {atom!r} "
                    f"({type(atom).__name__})")
        self._rel_atoms = tuple(rel_atoms)
        self._comparisons = tuple(comparisons)
        self._check_safety()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        return not self.head

    @property
    def relation_atoms(self) -> tuple[RelAtom, ...]:
        return self._rel_atoms

    @property
    def comparisons(self) -> tuple[Eq | Neq, ...]:
        return self._comparisons

    def head_variables(self) -> set[Var]:
        return {t for t in self.head if isinstance(t, Var)}

    def variables(self) -> set[Var]:
        """All variables of the query (head and body)."""
        result: set[Var] = set(self.head_variables())
        for atom in self.body:
            result |= atom.variables()
        return result

    def constants(self) -> set[Any]:
        """All constants mentioned anywhere in the query."""
        result: set[Any] = {
            t.value for t in self.head if isinstance(t, Const)}
        for atom in self.body:
            result |= atom.constants()
        return result

    def relations_used(self) -> set[str]:
        return {atom.relation for atom in self._rel_atoms}

    def _check_safety(self) -> None:
        bound = set()
        for atom in self._rel_atoms:
            bound |= atom.variables()
        unsafe = (self.head_variables() - bound)
        for comparison in self._comparisons:
            unsafe |= comparison.variables() - bound
        if unsafe:
            names = ", ".join(sorted(v.name for v in unsafe))
            raise QueryError(
                f"unsafe variables in query {self.name!r}: {names} do not "
                f"occur in any relation atom")

    def validate(self, schema: DatabaseSchema) -> None:
        """Validate all relation atoms against *schema*."""
        for atom in self._rel_atoms:
            atom.validate(schema)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def to_cq_disjuncts(self) -> list["ConjunctiveQuery"]:
        """Every query exposes itself as a union of CQs; a CQ is one."""
        return [self]

    def rename_variables(self, mapping: Mapping[Var, Var]
                         ) -> "ConjunctiveQuery":
        """Return a copy with variables renamed per *mapping*."""

        def sub(term: Term) -> Term:
            if isinstance(term, Var):
                return mapping.get(term, term)
            return term

        head = tuple(sub(t) for t in self.head)
        body = []
        for atom in self.body:
            if isinstance(atom, RelAtom):
                body.append(RelAtom(atom.relation,
                                    [sub(t) for t in atom.terms]))
            else:
                body.append(type(atom)(sub(atom.left), sub(atom.right)))
        return ConjunctiveQuery(head, body, name=self.name)

    def with_standardized_apart(self, suffix: str) -> "ConjunctiveQuery":
        """Rename every variable ``x`` to ``x<suffix>`` (fresh copies for
        combining queries without capture)."""
        mapping = {v: Var(v.name + suffix) for v in self.variables()}
        return self.rename_variables(mapping)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, instance: Instance, *,
                 context: Any = None) -> frozenset[tuple]:
        """Evaluate the query over *instance* (set semantics).

        Evaluation runs on the engine's compiled, hash-indexed plan
        (see :mod:`repro.engine`).  With an
        :class:`~repro.engine.context.EvaluationContext`, plans,
        indexes, and answers are shared across calls; without one the
        plan is still cached on the query but indexes are per-call.
        The pre-engine backtracking path survives as
        :meth:`evaluate_naive`, the testing oracle.
        """
        if context is not None:
            return context.evaluate(self, instance)
        from repro.engine.executor import IndexedSource, evaluate_plan
        from repro.engine.indexes import InstanceIndexes

        plan = self._compiled_plan()
        source = IndexedSource(InstanceIndexes(instance))
        return evaluate_plan(plan, (source,) * len(plan.steps))

    def evaluate_naive(self, instance: Instance) -> frozenset[tuple]:
        """The original backtracking-join evaluation, kept verbatim as
        the cross-validation oracle for the engine's property tests."""
        results: set[tuple] = set()
        for binding in self._bindings(instance):
            row = tuple(self._apply(term, binding) for term in self.head)
            results.add(row)
        return frozenset(results)

    def holds_in(self, instance: Instance, *, context: Any = None) -> bool:
        """True when the query has at least one answer in *instance*."""
        if context is not None:
            return context.holds(self, instance)
        from repro.engine.executor import IndexedSource, plan_holds
        from repro.engine.indexes import InstanceIndexes

        plan = self._compiled_plan()
        source = IndexedSource(InstanceIndexes(instance))
        return plan_holds(plan, (source,) * len(plan.steps))

    def _compiled_plan(self):
        """The query's full evaluation plan, compiled on first use."""
        plan = self._plan_cache
        if plan is None:
            from repro.engine.plan import compile_plan

            plan = compile_plan(self)
            self._plan_cache = plan
        return plan

    def _bindings(self, instance: Instance) -> Iterator[Binding]:
        """Yield all satisfying bindings of the body over *instance*."""
        atoms = self._ordered_atoms()
        yield from self._search(instance, atoms, 0, {})

    def _ordered_atoms(self) -> list[RelAtom]:
        """Greedy join order: repeatedly pick the atom sharing the most
        variables with those already bound (simple but effective)."""
        remaining = list(self._rel_atoms)
        ordered: list[RelAtom] = []
        bound: set[Var] = set()
        while remaining:
            best = max(remaining,
                       key=lambda a, bound=bound: (
                           len(a.variables() & bound),
                           -len(a.variables())))
            ordered.append(best)
            remaining.remove(best)
            bound |= best.variables()
        return ordered

    def _search(self, instance: Instance, atoms: list[RelAtom],
                index: int, binding: Binding) -> Iterator[Binding]:
        if index == len(atoms):
            if self._comparisons_hold(binding):
                yield dict(binding)
            return
        atom = atoms[index]
        try:
            rows = instance.relation(atom.relation)
        except Exception as exc:  # unknown relation
            raise EvaluationError(
                f"cannot evaluate {self.name!r}: {exc}") from exc
        for row in rows:
            extension = self._match(atom, row, binding)
            if extension is None:
                continue
            binding.update(extension)
            yield from self._search(instance, atoms, index + 1, binding)
            for key in extension:
                del binding[key]

    @staticmethod
    def _match(atom: RelAtom, row: tuple, binding: Binding
               ) -> Binding | None:
        """Try to unify *atom* with *row* under *binding*; return the new
        bindings or None on mismatch."""
        extension: Binding = {}
        for term, value in zip(atom.terms, row):
            if isinstance(term, Const):
                if term.value != value:
                    return None
            else:
                current = binding.get(term, extension.get(term, _MISSING))
                if current is _MISSING:
                    extension[term] = value
                elif current != value:
                    return None
        return extension

    def _comparisons_hold(self, binding: Binding) -> bool:
        for comparison in self._comparisons:
            left = self._apply(comparison.left, binding)
            right = self._apply(comparison.right, binding)
            if not comparison.holds(left, right):
                return False
        return True

    @staticmethod
    def _apply(term: Term, binding: Binding) -> Any:
        if isinstance(term, Const):
            return term.value
        try:
            return binding[term]
        except KeyError:
            raise EvaluationError(
                f"unbound variable {term!r} during evaluation") from None

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ConjunctiveQuery)
                and self.head == other.head
                and self.body == other.body)

    def __hash__(self) -> int:
        return hash((self.head, self.body))

    def __repr__(self) -> str:
        head = ", ".join(repr(t) for t in self.head)
        body = ", ".join(repr(a) for a in self.body)
        return f"{self.name}({head}) :- {body}"


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing>"


_MISSING = _Missing()


def cq(head: Sequence[Any], body: Iterable[Any],
       name: str = "Q") -> ConjunctiveQuery:
    """Shorthand constructor for :class:`ConjunctiveQuery`."""
    return ConjunctiveQuery(head, body, name=name)
