"""Atomic formulas: relation atoms and (in)equality comparisons.

The paper's languages all include equality ``=`` and inequality ``≠`` over
terms (Section 2.1).  A :class:`RelAtom` refers to a relation by name; its
terms may be variables or constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import QueryError, SchemaError
from repro.queries.terms import Const, Term, Var, as_term, vars_of
from repro.relational.schema import DatabaseSchema

__all__ = ["Atom", "RelAtom", "Eq", "Neq", "Comparison", "rel", "eq", "neq"]


@dataclass(frozen=True, slots=True)
class RelAtom:
    """A relation atom ``R(t1, ..., tk)``."""

    relation: str
    terms: tuple[Term, ...]

    def __init__(self, relation: str, terms: Iterable[Any]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(
            self, "terms", tuple(as_term(t) for t in terms))
        if not relation or not isinstance(relation, str):
            raise QueryError(
                f"relation name must be a non-empty string, got {relation!r}")

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> set[Var]:
        return vars_of(self.terms)

    def constants(self) -> set[Any]:
        return {t.value for t in self.terms if isinstance(t, Const)}

    def validate(self, schema: DatabaseSchema) -> None:
        """Check relation existence, arity, and constant domains."""
        try:
            relation = schema.relation(self.relation)
        except SchemaError as exc:
            raise QueryError(str(exc)) from None
        if relation.arity != self.arity:
            raise QueryError(
                f"atom {self!r} has arity {self.arity}, but relation "
                f"{self.relation!r} has arity {relation.arity}")
        for pos, term in enumerate(self.terms):
            if isinstance(term, Const):
                relation.domain_at(pos).validate(
                    term.value, context=f"atom {self!r}, column {pos}")

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


@dataclass(frozen=True, slots=True)
class _BinaryComparison:
    left: Term
    right: Term

    _symbol = "?"

    def __init__(self, left: Any, right: Any) -> None:
        object.__setattr__(self, "left", as_term(left))
        object.__setattr__(self, "right", as_term(right))

    def variables(self) -> set[Var]:
        return vars_of((self.left, self.right))

    def constants(self) -> set[Any]:
        return {t.value for t in (self.left, self.right)
                if isinstance(t, Const)}

    def holds(self, left_value: Any, right_value: Any) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{self.left!r} {self._symbol} {self.right!r}"


class Eq(_BinaryComparison):
    """Equality atom ``t1 = t2``."""

    _symbol = "="

    def holds(self, left_value: Any, right_value: Any) -> bool:
        return left_value == right_value


class Neq(_BinaryComparison):
    """Inequality atom ``t1 ≠ t2``."""

    _symbol = "≠"

    def holds(self, left_value: Any, right_value: Any) -> bool:
        return left_value != right_value


Comparison = (Eq, Neq)
Atom = (RelAtom, Eq, Neq)


def rel(relation: str, *terms: Any) -> RelAtom:
    """Shorthand constructor: ``rel("R", var("x"), 1)``."""
    return RelAtom(relation, terms)


def eq(left: Any, right: Any) -> Eq:
    """Shorthand constructor for :class:`Eq`."""
    return Eq(left, right)


def neq(left: Any, right: Any) -> Neq:
    """Shorthand constructor for :class:`Neq`."""
    return Neq(left, right)
