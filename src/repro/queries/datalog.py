"""Datalog (FP): positive rules with an inflationary fixpoint.

The paper's FP is an extension of ∃FO⁺ with an inflationary fixpoint
operator: a collection of rules ``p(x̄) ← p1(x̄1), ..., pn(x̄n)`` where each
``pi`` is a relation atom over the database schema, ``=``, ``≠``, or an IDB
predicate (Section 2.1).

Evaluation is bottom-up to the least fixpoint (recursion is positive, so
least and inflationary fixpoints coincide).  Two strategies are provided:

* ``"seminaive"`` (default): per iteration, a rule with IDB body atoms is
  evaluated once per IDB atom position, with that position restricted to
  the previous iteration's *delta* — the classic optimization that avoids
  rederiving old facts;
* ``"naive"``: re-evaluate every rule against the full instance each
  round; retained as the executable specification the semi-naive engine is
  tested against.

Rule bodies are reused as :class:`~repro.queries.cq.ConjunctiveQuery`
evaluations over a combined EDB+IDB instance.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import QueryError
from repro.queries.atoms import Eq, Neq, RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Var
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)

__all__ = ["Rule", "DatalogQuery", "rule"]


class Rule:
    """A datalog rule ``head :- body``.

    The head must be a relation atom over an IDB predicate; the body may mix
    EDB atoms, IDB atoms, and comparisons.  Safety: every variable of the
    head and of every comparison occurs in some body relation atom.
    """

    __slots__ = ("head", "body")

    def __init__(self, head: RelAtom, body: Iterable[Any]) -> None:
        if not isinstance(head, RelAtom):
            raise QueryError(
                f"rule head must be a relation atom, got "
                f"{type(head).__name__}")
        self.head = head
        self.body = tuple(body)
        bound: set[Var] = set()
        for atom in self.body:
            if isinstance(atom, RelAtom):
                bound |= atom.variables()
            elif not isinstance(atom, (Eq, Neq)):
                raise QueryError(
                    f"unsupported atom in rule body: {atom!r}")
        unsafe = head.variables() - bound
        for atom in self.body:
            if isinstance(atom, (Eq, Neq)):
                unsafe |= atom.variables() - bound
        if unsafe:
            names = ", ".join(sorted(v.name for v in unsafe))
            raise QueryError(f"unsafe rule variables: {names}")

    def variables(self) -> set[Var]:
        result = set(self.head.variables())
        for atom in self.body:
            result |= atom.variables()
        return result

    def constants(self) -> set[Any]:
        result = set(self.head.constants())
        for atom in self.body:
            result |= atom.constants()
        return result

    def __repr__(self) -> str:
        body = ", ".join(repr(a) for a in self.body)
        return f"{self.head!r} :- {body}"


def rule(head: RelAtom, *body: Any) -> Rule:
    """Shorthand constructor for :class:`Rule`."""
    return Rule(head, body)


class DatalogQuery:
    """A datalog program with a designated goal predicate.

    ``evaluate`` computes the least fixpoint of the program over the input
    instance and returns the contents of the goal predicate.  The goal may
    also be an EDB relation (a program with no rules then acts as identity).
    """

    language = "FP"

    __slots__ = ("name", "rules", "goal", "strategy", "_idb_arity")

    def __init__(self, rules: Sequence[Rule], goal: str,
                 name: str = "Q", strategy: str = "seminaive") -> None:
        if strategy not in ("seminaive", "naive"):
            raise QueryError(f"unknown evaluation strategy {strategy!r}")
        self.name = name
        self.rules = tuple(rules)
        self.goal = goal
        self.strategy = strategy
        arities: dict[str, int] = {}
        for r in self.rules:
            known = arities.get(r.head.relation)
            if known is not None and known != r.head.arity:
                raise QueryError(
                    f"IDB predicate {r.head.relation!r} used with arities "
                    f"{known} and {r.head.arity}")
            arities[r.head.relation] = r.head.arity
        self._idb_arity = arities

    @property
    def idb_predicates(self) -> frozenset[str]:
        return frozenset(self._idb_arity)

    @property
    def arity(self) -> int | None:
        """Arity of the goal predicate if it is an IDB predicate."""
        return self._idb_arity.get(self.goal)

    def variables(self) -> set[Var]:
        result: set[Var] = set()
        for r in self.rules:
            result |= r.variables()
        return result

    def constants(self) -> set[Any]:
        result: set[Any] = set()
        for r in self.rules:
            result |= r.constants()
        return result

    def relations_used(self) -> set[str]:
        used: set[str] = set()
        for r in self.rules:
            for atom in r.body:
                if isinstance(atom, RelAtom):
                    used.add(atom.relation)
        return (used - self.idb_predicates)

    def validate(self, schema: DatabaseSchema) -> None:
        """Check all EDB atoms against *schema* and goal resolvability."""
        for r in self.rules:
            for atom in r.body:
                if (isinstance(atom, RelAtom)
                        and atom.relation not in self.idb_predicates):
                    atom.validate(schema)
        if self.goal not in self.idb_predicates and self.goal not in schema:
            raise QueryError(
                f"goal {self.goal!r} is neither an IDB predicate nor an "
                f"EDB relation")

    def _combined_schema(self, schema: DatabaseSchema) -> DatabaseSchema:
        extra = []
        for predicate, arity in self._idb_arity.items():
            if predicate in schema:
                raise QueryError(
                    f"IDB predicate {predicate!r} clashes with an EDB "
                    f"relation")
            extra.append(RelationSchema(
                predicate,
                [Attribute(f"c{i}") for i in range(arity)]))
        return schema.extended_with(*extra)

    def fixpoint(self, instance: Instance) -> Instance:
        """Compute the least fixpoint: the instance extended with all
        derivable IDB facts (strategy per :attr:`strategy`)."""
        if self.strategy == "naive":
            return self._fixpoint_naive(instance)
        return self._fixpoint_seminaive(instance)

    def _fixpoint_naive(self, instance: Instance) -> Instance:
        combined_schema = self._combined_schema(instance.schema)
        contents = {name: set(rows) for name, rows in instance}
        for predicate in self._idb_arity:
            contents[predicate] = set()
        current = Instance(combined_schema, contents, validate=False)
        body_queries = [
            ConjunctiveQuery(r.head.terms, r.body,
                             name=f"{self.name}:rule{i}")
            for i, r in enumerate(self.rules)]
        changed = True
        while changed:
            changed = False
            new_facts: list[tuple[str, tuple]] = []
            for r, body_query in zip(self.rules, body_queries):
                derived = body_query.evaluate(current)
                existing = current.relation(r.head.relation)
                for row in derived - existing:
                    new_facts.append((r.head.relation, row))
            if new_facts:
                current = current.with_facts(new_facts)
                changed = True
        return current

    def _fixpoint_seminaive(self, instance: Instance) -> Instance:
        """Semi-naive evaluation with per-predicate deltas.

        Per iteration, a rule with ``k`` IDB body atoms contributes ``k``
        delta-rewritings: the i-th rewriting reads the i-th IDB atom from
        ``Δ<predicate>`` (the facts new in the previous round) and the
        others from the full predicate.  Rules without IDB body atoms fire
        once, in the seeding round.
        """
        idb = set(self._idb_arity)
        delta_name = {p: f"Δ{p}" for p in idb}
        combined_schema = self._combined_schema(instance.schema)
        delta_relations = [
            RelationSchema(delta_name[p],
                           [Attribute(f"c{i}")
                            for i in range(self._idb_arity[p])])
            for p in sorted(idb)]
        working_schema = combined_schema.extended_with(*delta_relations)

        contents = {name: set(rows) for name, rows in instance}
        for predicate in idb:
            contents[predicate] = set()
            contents[delta_name[predicate]] = set()

        # Delta-rewritings per rule: (head, body-query) pairs.
        rewritings: list[tuple[RelAtom, ConjunctiveQuery]] = []
        seeding: list[tuple[RelAtom, ConjunctiveQuery]] = []
        for index, r in enumerate(self.rules):
            idb_positions = [i for i, atom in enumerate(r.body)
                             if isinstance(atom, RelAtom)
                             and atom.relation in idb]
            if not idb_positions:
                seeding.append((r.head, ConjunctiveQuery(
                    r.head.terms, r.body, name=f"{self.name}:seed{index}")))
                continue
            for position in idb_positions:
                body = []
                for i, atom in enumerate(r.body):
                    if i == position:
                        body.append(RelAtom(
                            delta_name[atom.relation], atom.terms))
                    else:
                        body.append(atom)
                rewritings.append((r.head, ConjunctiveQuery(
                    r.head.terms, body,
                    name=f"{self.name}:rule{index}δ{position}")))

        def materialize() -> Instance:
            return Instance(working_schema, contents, validate=False)

        # Seeding round: IDB-free rules, plus delta = everything derived.
        current = materialize()
        for head, query in seeding:
            derived = query.evaluate(current)
            contents[head.relation] |= derived
            contents[delta_name[head.relation]] |= derived

        while any(contents[delta_name[p]] for p in idb):
            current = materialize()
            new_delta: dict[str, set[tuple]] = {p: set() for p in idb}
            for head, query in rewritings:
                for row in query.evaluate(current):
                    if row not in contents[head.relation]:
                        new_delta[head.relation].add(row)
            for predicate in idb:
                contents[predicate] |= new_delta[predicate]
                contents[delta_name[predicate]] = new_delta[predicate]

        delta_names = set(delta_name.values())
        final = {name: rows for name, rows in contents.items()
                 if name not in delta_names}
        return Instance(combined_schema, final, validate=False)

    def evaluate(self, instance: Instance, *,
                 context: Any = None) -> frozenset[tuple]:
        # Fixpoint semantics has no compiled-plan form in the engine;
        # *context* is accepted for interface uniformity (the engine's
        # answer cache calls back here without one).
        del context
        fixpoint = self.fixpoint(instance)
        return fixpoint.relation(self.goal)

    def holds_in(self, instance: Instance, *, context: Any = None) -> bool:
        if context is not None:
            return context.holds(self, instance)
        return bool(self.evaluate(instance))

    def __repr__(self) -> str:
        rules = "; ".join(repr(r) for r in self.rules)
        return f"{self.name}[goal={self.goal}]{{{rules}}}"
