"""First-order queries (FO) under active-domain semantics.

FO adds negation and universal quantification to ∃FO⁺ (Section 2.1).  As is
standard for finite model theory, quantifiers range over the *active domain*:
all constants of the instance plus all constants of the query.  This is the
convention under which the paper's undecidability encodings (Theorems 3.1 and
4.1) are read.

FO queries are evaluated recursively; they cannot be unfolded into UCQs
(negation), so the exact RCDP/RCQP deciders reject them — the problems are
undecidable for FO — and only the bounded procedures accept them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import EvaluationError, QueryError
from repro.queries.atoms import Eq, Neq, RelAtom
from repro.queries.terms import Const, Term, Var, as_term
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema

__all__ = [
    "FOFormula", "FOAtom", "FONot", "FOAnd", "FOOr", "FOImplies",
    "FOExists", "FOForall", "FOQuery",
    "fo_atom", "fo_not", "fo_and", "fo_or", "fo_implies", "fo_exists",
    "fo_forall",
]


class FOFormula:
    """Base class of FO formula nodes."""

    def free_variables(self) -> set[Var]:
        raise NotImplementedError

    def constants(self) -> set[Any]:
        raise NotImplementedError

    def relations_used(self) -> set[str]:
        raise NotImplementedError

    def _eval(self, instance: Instance, env: dict[Var, Any],
              domain: frozenset) -> bool:
        raise NotImplementedError


def _term_value(term: Term, env: dict[Var, Any]) -> Any:
    if isinstance(term, Const):
        return term.value
    try:
        return env[term]
    except KeyError:
        raise EvaluationError(
            f"unbound variable {term!r} in FO evaluation") from None


@dataclass(frozen=True, slots=True)
class FOAtom(FOFormula):
    """Leaf: a relation atom or comparison."""

    atom: Any

    def __post_init__(self) -> None:
        if not isinstance(self.atom, (RelAtom, Eq, Neq)):
            raise QueryError(
                f"FO leaves must be relation atoms or comparisons, got "
                f"{type(self.atom).__name__}")

    def free_variables(self) -> set[Var]:
        return self.atom.variables()

    def constants(self) -> set[Any]:
        return self.atom.constants()

    def relations_used(self) -> set[str]:
        if isinstance(self.atom, RelAtom):
            return {self.atom.relation}
        return set()

    def _eval(self, instance: Instance, env: dict[Var, Any],
              domain: frozenset) -> bool:
        atom = self.atom
        if isinstance(atom, RelAtom):
            row = tuple(_term_value(t, env) for t in atom.terms)
            return row in instance.relation(atom.relation)
        return atom.holds(_term_value(atom.left, env),
                          _term_value(atom.right, env))

    def __repr__(self) -> str:
        return repr(self.atom)


@dataclass(frozen=True, slots=True)
class FONot(FOFormula):
    """Negation."""

    body: FOFormula

    def free_variables(self) -> set[Var]:
        return self.body.free_variables()

    def constants(self) -> set[Any]:
        return self.body.constants()

    def relations_used(self) -> set[str]:
        return self.body.relations_used()

    def _eval(self, instance, env, domain) -> bool:
        return not self.body._eval(instance, env, domain)

    def __repr__(self) -> str:
        return f"¬{self.body!r}"


class _NaryFormula(FOFormula):
    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[FOFormula]) -> None:
        self.parts = tuple(parts)
        if not self.parts:
            raise QueryError("empty connective")

    def free_variables(self) -> set[Var]:
        return set().union(*(p.free_variables() for p in self.parts))

    def constants(self) -> set[Any]:
        return set().union(*(p.constants() for p in self.parts))

    def relations_used(self) -> set[str]:
        return set().union(*(p.relations_used() for p in self.parts))

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.parts))


class FOAnd(_NaryFormula):
    """Conjunction."""

    def _eval(self, instance, env, domain) -> bool:
        return all(p._eval(instance, env, domain) for p in self.parts)

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(p) for p in self.parts) + ")"


class FOOr(_NaryFormula):
    """Disjunction."""

    def _eval(self, instance, env, domain) -> bool:
        return any(p._eval(instance, env, domain) for p in self.parts)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class FOImplies(FOFormula):
    """Implication (syntactic sugar for ¬left ∨ right)."""

    left: FOFormula
    right: FOFormula

    def free_variables(self) -> set[Var]:
        return self.left.free_variables() | self.right.free_variables()

    def constants(self) -> set[Any]:
        return self.left.constants() | self.right.constants()

    def relations_used(self) -> set[str]:
        return self.left.relations_used() | self.right.relations_used()

    def _eval(self, instance, env, domain) -> bool:
        if not self.left._eval(instance, env, domain):
            return True
        return self.right._eval(instance, env, domain)

    def __repr__(self) -> str:
        return f"({self.left!r} → {self.right!r})"


class _Quantifier(FOFormula):
    __slots__ = ("variables", "body")

    def __init__(self, variables: Iterable[Var], body: FOFormula) -> None:
        self.variables = tuple(variables)
        self.body = body
        if not all(isinstance(v, Var) for v in self.variables):
            raise QueryError("quantifiers bind variables only")

    def free_variables(self) -> set[Var]:
        return self.body.free_variables() - set(self.variables)

    def constants(self) -> set[Any]:
        return self.body.constants()

    def relations_used(self) -> set[str]:
        return self.body.relations_used()

    def _assignments(self, env: dict[Var, Any], domain: frozenset):
        """Yield environments extending *env* over the bound variables."""
        variables = self.variables

        def extend(index: int):
            if index == len(variables):
                yield env
                return
            v = variables[index]
            for value in domain:
                env[v] = value
                yield from extend(index + 1)
            env.pop(variables[index], None)

        yield from extend(0)

    def __eq__(self, other: object) -> bool:
        return (type(self) is type(other)
                and self.variables == other.variables
                and self.body == other.body)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.variables, self.body))


class FOExists(_Quantifier):
    """Existential quantification over the active domain."""

    def _eval(self, instance, env, domain) -> bool:
        saved = {v: env[v] for v in self.variables if v in env}
        try:
            for extended in self._assignments(env, domain):
                if self.body._eval(instance, extended, domain):
                    return True
            return False
        finally:
            for v in self.variables:
                env.pop(v, None)
            env.update(saved)

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"∃{names}.{self.body!r}"


class FOForall(_Quantifier):
    """Universal quantification over the active domain."""

    def _eval(self, instance, env, domain) -> bool:
        saved = {v: env[v] for v in self.variables if v in env}
        try:
            for extended in self._assignments(env, domain):
                if not self.body._eval(instance, extended, domain):
                    return False
            return True
        finally:
            for v in self.variables:
                env.pop(v, None)
            env.update(saved)

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"∀{names}.{self.body!r}"


def fo_atom(atom: Any) -> FOAtom:
    """Wrap an atom as an FO leaf."""
    return FOAtom(atom)


def fo_not(body: FOFormula) -> FONot:
    """Negation shorthand."""
    return FONot(body)


def fo_and(*parts: FOFormula) -> FOAnd:
    """Conjunction shorthand."""
    return FOAnd(parts)


def fo_or(*parts: FOFormula) -> FOOr:
    """Disjunction shorthand."""
    return FOOr(parts)


def fo_implies(left: FOFormula, right: FOFormula) -> FOImplies:
    """Implication shorthand."""
    return FOImplies(left, right)


def fo_exists(variables: Iterable[Var], body: FOFormula) -> FOExists:
    """Existential shorthand."""
    return FOExists(variables, body)


def fo_forall(variables: Iterable[Var], body: FOFormula) -> FOForall:
    """Universal shorthand."""
    return FOForall(variables, body)


class FOQuery:
    """A first-order query: output variables over an FO formula.

    Evaluation enumerates assignments of the head variables over the active
    domain (instance constants plus query constants) and keeps those under
    which the formula holds.
    """

    language = "FO"

    __slots__ = ("name", "head", "formula")

    def __init__(self, head: Sequence[Any], formula: FOFormula,
                 name: str = "Q") -> None:
        self.name = name
        self.head = tuple(as_term(t) for t in head)
        if not isinstance(formula, FOFormula):
            raise QueryError(
                f"expected FOFormula, got {type(formula).__name__}")
        self.formula = formula
        unbound = self.formula.free_variables() - self.head_variables()
        if unbound:
            names = ", ".join(sorted(v.name for v in unbound))
            raise QueryError(
                f"FO query {name!r} has free formula variables not in the "
                f"head: {names} (quantify them explicitly)")

    @property
    def arity(self) -> int:
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        return not self.head

    def head_variables(self) -> set[Var]:
        return {t for t in self.head if isinstance(t, Var)}

    def variables(self) -> set[Var]:
        return self.head_variables() | self.formula.free_variables()

    def constants(self) -> set[Any]:
        consts = {t.value for t in self.head if isinstance(t, Const)}
        return consts | self.formula.constants()

    def relations_used(self) -> set[str]:
        return self.formula.relations_used()

    def validate(self, schema: DatabaseSchema) -> None:
        for name in self.relations_used():
            schema.relation(name)

    def evaluation_domain(self, instance: Instance) -> frozenset:
        """Active domain used for quantification."""
        return instance.active_domain() | frozenset(self.constants())

    def evaluate(self, instance: Instance, *,
                 context: Any = None) -> frozenset[tuple]:
        # FO is not monotone, so the engine's compiled/delta paths do not
        # apply; *context* is accepted for interface uniformity (answer
        # caching happens in EvaluationContext.evaluate, which calls back
        # here without a context).
        del context
        domain = self.evaluation_domain(instance)
        head_vars = tuple(sorted(self.head_variables(),
                                 key=lambda v: v.name))
        results: set[tuple] = set()

        def assign(index: int, env: dict[Var, Any]) -> None:
            if index == len(head_vars):
                if self.formula._eval(instance, env, domain):
                    row = tuple(
                        t.value if isinstance(t, Const) else env[t]
                        for t in self.head)
                    results.add(row)
                return
            for value in domain:
                env[head_vars[index]] = value
                assign(index + 1, env)
            env.pop(head_vars[index], None)

        assign(0, {})
        return frozenset(results)

    def holds_in(self, instance: Instance, *, context: Any = None) -> bool:
        if context is not None:
            return context.holds(self, instance)
        return bool(self.evaluate(instance))

    def __repr__(self) -> str:
        head = ", ".join(repr(t) for t in self.head)
        return f"{self.name}({head}) := {self.formula!r}"
