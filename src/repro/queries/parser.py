"""A small textual syntax for rules, CQs, UCQs, and datalog programs.

Grammar (informal)::

    program   := rule (";" | newline)* ...
    rule      := head [ ":-" body ]
    head      := NAME "(" terms? ")"
    body      := literal ("," literal)*
    literal   := atom | comparison
    atom      := NAME "(" terms? ")"
    comparison:= term ("=" | "!=") term
    term      := NAME            -- variable (lowercase start)
               | STRING          -- quoted constant: 'abc' or "abc"
               | NUMBER          -- integer constant

Examples::

    Q(c) :- Supt('e0', d, c)
    Q(c) :- Cust(c, n, cc, a, p), cc = '01', a != '908'

    T(x, y) :- E(x, y)
    T(x, z) :- E(x, y), T(y, z)

* :func:`parse_query` accepts one or more rules sharing a head predicate
  and no recursion, returning a CQ (one rule) or a UCQ (several);
* :func:`parse_program` accepts arbitrary rules and a goal predicate,
  returning a :class:`~repro.queries.datalog.DatalogQuery`.

Variables are identifiers; anything quoted or numeric is a constant.
Comments run from ``#`` to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ParseError
from repro.queries.atoms import Eq, Neq, RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.datalog import DatalogQuery, Rule
from repro.queries.terms import Const, Term, Var
from repro.queries.ucq import UnionOfConjunctiveQueries

__all__ = ["parse_query", "parse_program", "parse_rules"]

_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("ARROW", r":-"),
    ("NEQ", r"!="),
    ("EQ", r"="),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("SEMI", r";"),
    ("STRING", r"'[^']*'|\"[^\"]*\""),
    ("NUMBER", r"-?\d+"),
    ("NAME", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("BAD", r"."),
]
_TOKEN_RE = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(text: str) -> Iterator[_Token]:
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        value = match.group()
        column = match.start() - line_start + 1
        if kind == "NEWLINE":
            yield _Token("NEWLINE", value, line, column)
            line += 1
            line_start = match.end()
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "BAD":
            raise ParseError(f"unexpected character {value!r}",
                             line=line, column=column)
        yield _Token(kind, value, line, column)
    yield _Token("EOF", "", line, 0)


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._position = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._position]

    def _advance(self) -> _Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} {token.text!r}",
                line=token.line, column=token.column)
        return self._advance()

    def _skip_separators(self) -> None:
        while self._peek().kind in ("NEWLINE", "SEMI"):
            self._advance()

    # -- grammar ---------------------------------------------------------

    def parse_rules(self) -> list[tuple[RelAtom, list[Any]]]:
        rules = []
        self._skip_separators()
        while self._peek().kind != "EOF":
            rules.append(self._rule())
            self._skip_separators()
        if not rules:
            raise ParseError("no rules found")
        return rules

    def _rule(self) -> tuple[RelAtom, list[Any]]:
        head = self._atom()
        body: list[Any] = []
        if self._peek().kind == "ARROW":
            self._advance()
            body.append(self._literal())
            while self._peek().kind == "COMMA":
                self._advance()
                # tolerate a line break after the comma
                while self._peek().kind == "NEWLINE":
                    self._advance()
                body.append(self._literal())
        return head, body

    def _literal(self) -> Any:
        # Lookahead: NAME "(" → atom; otherwise comparison.
        token = self._peek()
        if (token.kind == "NAME"
                and self._tokens[self._position + 1].kind == "LPAREN"):
            return self._atom()
        left = self._term()
        op = self._peek()
        if op.kind == "EQ":
            self._advance()
            return Eq(left, self._term())
        if op.kind == "NEQ":
            self._advance()
            return Neq(left, self._term())
        raise ParseError(
            f"expected '=' or '!=' after term, found {op.text!r}",
            line=op.line, column=op.column)

    def _atom(self) -> RelAtom:
        name = self._expect("NAME")
        self._expect("LPAREN")
        terms: list[Term] = []
        if self._peek().kind != "RPAREN":
            terms.append(self._term())
            while self._peek().kind == "COMMA":
                self._advance()
                terms.append(self._term())
        self._expect("RPAREN")
        return RelAtom(name.text, terms)

    def _term(self) -> Term:
        token = self._peek()
        if token.kind == "NAME":
            self._advance()
            return Var(token.text)
        if token.kind == "STRING":
            self._advance()
            return Const(token.text[1:-1])
        if token.kind == "NUMBER":
            self._advance()
            return Const(int(token.text))
        raise ParseError(
            f"expected a term, found {token.kind} {token.text!r}",
            line=token.line, column=token.column)


def parse_rules(text: str) -> list[tuple[RelAtom, list[Any]]]:
    """Parse *text* into raw ``(head, body)`` rule pairs."""
    return _Parser(text).parse_rules()


def parse_query(text: str):
    """Parse a CQ or UCQ.

    Every rule must share the head predicate; the head predicate must not
    occur in any body (no recursion — use :func:`parse_program` for that).
    One rule yields a :class:`ConjunctiveQuery`, several a
    :class:`UnionOfConjunctiveQueries`.
    """
    rules = parse_rules(text)
    head_name = rules[0][0].relation
    disjuncts = []
    for index, (head, body) in enumerate(rules):
        if head.relation != head_name:
            raise ParseError(
                f"all rules of a query must share one head predicate; "
                f"found {head.relation!r} and {head_name!r}")
        for atom in body:
            if isinstance(atom, RelAtom) and atom.relation == head_name:
                raise ParseError(
                    f"recursive use of {head_name!r}: use parse_program "
                    f"for datalog")
        disjuncts.append(ConjunctiveQuery(
            head.terms, body, name=f"{head_name}.{index}"
            if len(rules) > 1 else head_name))
    if len(disjuncts) == 1:
        return disjuncts[0]
    return UnionOfConjunctiveQueries(disjuncts, name=head_name)


def parse_program(text: str, goal: str, name: str = "Q") -> DatalogQuery:
    """Parse a datalog program with designated *goal* predicate."""
    rules = [Rule(head, body) for head, body in parse_rules(text)]
    return DatalogQuery(rules, goal=goal, name=name)
