"""A small textual syntax for rules, CQs, UCQs, and datalog programs.

Grammar (informal)::

    program   := rule (";" | newline)* ...
    rule      := head [ ":-" body ]
    head      := NAME "(" terms? ")"
    body      := literal ("," literal)*
    literal   := atom | comparison
    atom      := NAME "(" terms? ")"
    comparison:= term ("=" | "!=") term
    term      := NAME            -- variable (lowercase start)
               | STRING          -- quoted constant: 'abc' or "abc"
               | NUMBER          -- integer constant

Examples::

    Q(c) :- Supt('e0', d, c)
    Q(c) :- Cust(c, n, cc, a, p), cc = '01', a != '908'

    T(x, y) :- E(x, y)
    T(x, z) :- E(x, y), T(y, z)

* :func:`parse_query` accepts one or more rules sharing a head predicate
  and no recursion, returning a CQ (one rule) or a UCQ (several);
* :func:`parse_program` accepts arbitrary rules and a goal predicate,
  returning a :class:`~repro.queries.datalog.DatalogQuery`.

Variables are identifiers; anything quoted or numeric is a constant.
Comments run from ``#`` to end of line.

Every token carries its 0-based character ``offset`` in addition to the
1-based ``line``/``column``, and the parser records a
:class:`RuleSpans` per rule — the extent of the whole rule, its head,
each body literal, and the first occurrence of every variable.  The
``*_spanned`` variants return those alongside the parsed objects; the
static analyzer (:mod:`repro.analysis`) uses them to point diagnostics
at exact source spans.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ParseError
from repro.queries.atoms import Eq, Neq, RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.datalog import DatalogQuery, Rule
from repro.queries.terms import Const, Term, Var
from repro.queries.ucq import UnionOfConjunctiveQueries

__all__ = ["parse_query", "parse_program", "parse_rules",
           "parse_query_spanned", "parse_rules_spanned",
           "SourceSpan", "RuleSpans"]

_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("ARROW", r":-"),
    ("NEQ", r"!="),
    ("EQ", r"="),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("SEMI", r";"),
    ("STRING", r"'[^']*'|\"[^\"]*\""),
    ("NUMBER", r"-?\d+"),
    ("NAME", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("BAD", r"."),
]
_TOKEN_RE = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int
    offset: int = 0

    @property
    def end(self) -> int:
        return self.offset + len(self.text)


@dataclass(frozen=True)
class SourceSpan:
    """A contiguous region of the parsed text (1-based line/column,
    0-based character offset)."""

    line: int
    column: int
    offset: int
    length: int


@dataclass(frozen=True)
class RuleSpans:
    """Where the pieces of one parsed rule live in the source text."""

    rule: SourceSpan
    head: SourceSpan
    #: One span per body literal, in body order (atoms and comparisons).
    literals: tuple[SourceSpan, ...]
    #: First occurrence of each variable name (head included).
    variables: dict[str, SourceSpan] = field(default_factory=dict)


def _tokenize(text: str) -> Iterator[_Token]:
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        value = match.group()
        column = match.start() - line_start + 1
        if kind == "NEWLINE":
            yield _Token("NEWLINE", value, line, column, match.start())
            line += 1
            line_start = match.end()
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "BAD":
            raise ParseError(f"unexpected character {value!r}",
                             line=line, column=column,
                             offset=match.start())
        yield _Token(kind, value, line, column, match.start())
    yield _Token("EOF", "", line, len(text) - line_start + 1, len(text))


def _token_span(token: _Token) -> SourceSpan:
    return SourceSpan(token.line, token.column, token.offset,
                      max(1, len(token.text)))


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._position = 0
        self.rule_spans: list[RuleSpans] = []
        self._variables: dict[str, SourceSpan] = {}

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._position]

    def _advance(self) -> _Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} {token.text!r}",
                line=token.line, column=token.column, offset=token.offset,
                length=max(1, len(token.text)))
        return self._advance()

    def _skip_separators(self) -> None:
        while self._peek().kind in ("NEWLINE", "SEMI"):
            self._advance()

    def _span_from(self, start: _Token) -> SourceSpan:
        """Extent from *start* up to the last consumed token."""
        last = self._tokens[self._position - 1]
        return SourceSpan(start.line, start.column, start.offset,
                          max(1, last.end - start.offset))

    # -- grammar ---------------------------------------------------------

    def parse_rules(self) -> list[tuple[RelAtom, list[Any]]]:
        rules = []
        self._skip_separators()
        while self._peek().kind != "EOF":
            rules.append(self._rule())
            self._skip_separators()
        if not rules:
            raise ParseError("no rules found", line=1, column=1, offset=0)
        return rules

    def _rule(self) -> tuple[RelAtom, list[Any]]:
        start = self._peek()
        self._variables = {}
        head = self._atom()
        head_span = self._span_from(start)
        body: list[Any] = []
        literal_spans: list[SourceSpan] = []
        if self._peek().kind == "ARROW":
            self._advance()
            literal_start = self._peek()
            body.append(self._literal())
            literal_spans.append(self._span_from(literal_start))
            while self._peek().kind == "COMMA":
                self._advance()
                # tolerate a line break after the comma
                while self._peek().kind == "NEWLINE":
                    self._advance()
                literal_start = self._peek()
                body.append(self._literal())
                literal_spans.append(self._span_from(literal_start))
        self.rule_spans.append(RuleSpans(
            rule=self._span_from(start), head=head_span,
            literals=tuple(literal_spans), variables=self._variables))
        return head, body

    def _literal(self) -> Any:
        # Lookahead: NAME "(" → atom; otherwise comparison.
        token = self._peek()
        if (token.kind == "NAME"
                and self._tokens[self._position + 1].kind == "LPAREN"):
            return self._atom()
        left = self._term()
        op = self._peek()
        if op.kind == "EQ":
            self._advance()
            return Eq(left, self._term())
        if op.kind == "NEQ":
            self._advance()
            return Neq(left, self._term())
        raise ParseError(
            f"expected '=' or '!=' after term, found {op.text!r}",
            line=op.line, column=op.column, offset=op.offset,
            length=max(1, len(op.text)))

    def _atom(self) -> RelAtom:
        name = self._expect("NAME")
        self._expect("LPAREN")
        terms: list[Term] = []
        if self._peek().kind != "RPAREN":
            terms.append(self._term())
            while self._peek().kind == "COMMA":
                self._advance()
                terms.append(self._term())
        self._expect("RPAREN")
        return RelAtom(name.text, terms)

    def _term(self) -> Term:
        token = self._peek()
        if token.kind == "NAME":
            self._advance()
            self._variables.setdefault(token.text, _token_span(token))
            return Var(token.text)
        if token.kind == "STRING":
            self._advance()
            return Const(token.text[1:-1])
        if token.kind == "NUMBER":
            self._advance()
            return Const(int(token.text))
        raise ParseError(
            f"expected a term, found {token.kind} {token.text!r}",
            line=token.line, column=token.column, offset=token.offset,
            length=max(1, len(token.text)))


def parse_rules(text: str) -> list[tuple[RelAtom, list[Any]]]:
    """Parse *text* into raw ``(head, body)`` rule pairs."""
    return _Parser(text).parse_rules()


def parse_rules_spanned(text: str) -> tuple[
        list[tuple[RelAtom, list[Any]]], list[RuleSpans]]:
    """Like :func:`parse_rules`, also returning one :class:`RuleSpans`
    per rule (aligned by index)."""
    parser = _Parser(text)
    rules = parser.parse_rules()
    return rules, parser.rule_spans


def _build_query(rules: list[tuple[RelAtom, list[Any]]],
                 spans: list[RuleSpans]):
    head_name = rules[0][0].relation
    disjuncts = []
    for index, (head, body) in enumerate(rules):
        if head.relation != head_name:
            where = spans[index].head
            raise ParseError(
                f"all rules of a query must share one head predicate; "
                f"found {head.relation!r} and {head_name!r}",
                line=where.line, column=where.column, offset=where.offset,
                length=where.length)
        for literal_index, atom in enumerate(body):
            if isinstance(atom, RelAtom) and atom.relation == head_name:
                where = spans[index].literals[literal_index]
                raise ParseError(
                    f"recursive use of {head_name!r}: use parse_program "
                    f"for datalog",
                    line=where.line, column=where.column,
                    offset=where.offset, length=where.length)
        disjuncts.append(ConjunctiveQuery(
            head.terms, body, name=f"{head_name}.{index}"
            if len(rules) > 1 else head_name))
    if len(disjuncts) == 1:
        return disjuncts[0]
    return UnionOfConjunctiveQueries(disjuncts, name=head_name)


def parse_query(text: str):
    """Parse a CQ or UCQ.

    Every rule must share the head predicate; the head predicate must not
    occur in any body (no recursion — use :func:`parse_program` for that).
    One rule yields a :class:`ConjunctiveQuery`, several a
    :class:`UnionOfConjunctiveQueries`.
    """
    rules, spans = parse_rules_spanned(text)
    return _build_query(rules, spans)


def parse_query_spanned(text: str) -> tuple[Any, list[RuleSpans]]:
    """Like :func:`parse_query`, also returning the per-rule spans
    (one :class:`RuleSpans` per disjunct, aligned by disjunct index)."""
    rules, spans = parse_rules_spanned(text)
    return _build_query(rules, spans), spans


def parse_program(text: str, goal: str, name: str = "Q") -> DatalogQuery:
    """Parse a datalog program with designated *goal* predicate."""
    rules = [Rule(head, body) for head, body in parse_rules(text)]
    return DatalogQuery(rules, goal=goal, name=name)
