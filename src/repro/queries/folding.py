"""Lemma 3.2: folding a multi-relation database into a single relation.

For each relational schema ``R = (R1, ..., Rn)`` there is a single relation
schema ``R``, a linear-time function ``f_D`` on instances, and a linear-time
function ``f_Q`` on CQs with ``Q(D) = f_Q(Q)(f_D(D))``.

Construction (following the paper's proof):

* all relations are made uniform by padding to the maximum arity with a
  reserved padding constant;
* a tag attribute ``AR`` is appended whose value identifies the source
  relation (column index ``arity_max``);
* ``f_D(D) = ⋃_j I_j × {AR = j}``;
* ``f_Q`` replaces every atom ``Rj(t̄)`` by ``R(t̄, pad..., j)`` where the
  padding positions hold fresh existential variables.

The fold is exact for CQ (and by disjunct-wise application for UCQ/∃FO⁺).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import SchemaError
from repro.queries.atoms import RelAtom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Const, Var
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.domain import FiniteDomain, FreshValue, INFINITE
from repro.relational.instance import Instance
from repro.relational.schema import (Attribute, DatabaseSchema,
                                     RelationSchema)

__all__ = ["Folding", "PAD"]

#: Reserved padding constant used to fill dummy columns; a fresh value, so it
#: can never collide with user data.
PAD = FreshValue("fold.pad")


@dataclass(frozen=True)
class Folding:
    """The single-relation encoding of a multi-relation schema.

    Create one with :meth:`Folding.of`; then use :meth:`fold_instance`
    (``f_D``) and :meth:`fold_query` (``f_Q``).
    """

    source: DatabaseSchema
    folded: DatabaseSchema
    relation_name: str
    tag_of: dict[str, int]
    max_arity: int

    @classmethod
    def of(cls, schema: DatabaseSchema,
           relation_name: str = "Rfold") -> "Folding":
        """Build the folding of *schema*."""
        names = schema.relation_names
        if not names:
            raise SchemaError("cannot fold an empty schema")
        if relation_name in schema:
            raise SchemaError(
                f"folded relation name {relation_name!r} clashes with a "
                f"source relation")
        max_arity = max(schema.relation(n).arity for n in names)
        tag_of = {name: index + 1 for index, name in enumerate(names)}
        tag_values = set(tag_of.values()) | {0}  # 0 pads to ≥ 2 values
        attributes = [Attribute(f"c{i}", INFINITE) for i in range(max_arity)]
        attributes.append(Attribute(
            "AR", FiniteDomain(tag_values, name="tags")))
        folded = DatabaseSchema([RelationSchema(relation_name, attributes)])
        return cls(source=schema, folded=folded,
                   relation_name=relation_name, tag_of=dict(tag_of),
                   max_arity=max_arity)

    # ------------------------------------------------------------------
    # f_D
    # ------------------------------------------------------------------

    def fold_instance(self, instance: Instance) -> Instance:
        """``f_D``: encode *instance* as an instance of the folded schema."""
        rows: set[tuple] = set()
        for name, tag in self.tag_of.items():
            for row in instance.relation(name):
                padded = row + (PAD,) * (self.max_arity - len(row)) + (tag,)
                rows.add(padded)
        return Instance(self.folded, {self.relation_name: rows},
                        validate=False)

    def unfold_instance(self, folded_instance: Instance) -> Instance:
        """Inverse of :meth:`fold_instance` (for round-trip tests)."""
        arity_of = {name: self.source.relation(name).arity
                    for name in self.source.relation_names}
        tag_to_name = {tag: name for name, tag in self.tag_of.items()}
        contents: dict[str, set[tuple]] = {
            name: set() for name in self.source.relation_names}
        for row in folded_instance.relation(self.relation_name):
            *values, tag = row
            name = tag_to_name.get(tag)
            if name is None:
                raise SchemaError(f"unknown relation tag {tag!r}")
            arity = arity_of[name]
            contents[name].add(tuple(values[:arity]))
        return Instance(self.source, contents, validate=False)

    # ------------------------------------------------------------------
    # f_Q
    # ------------------------------------------------------------------

    def fold_query(self, query: ConjunctiveQuery) -> ConjunctiveQuery:
        """``f_Q``: rewrite a CQ over the source schema to the folded one."""
        counter = itertools.count()
        body = []
        for atom in query.body:
            if not isinstance(atom, RelAtom):
                body.append(atom)
                continue
            tag = self.tag_of.get(atom.relation)
            if tag is None:
                raise SchemaError(
                    f"query uses relation {atom.relation!r} not in the "
                    f"folded schema")
            pad_vars = tuple(
                Var(f"_pad{next(counter)}")
                for _ in range(self.max_arity - len(atom.terms)))
            body.append(RelAtom(
                self.relation_name,
                tuple(atom.terms) + pad_vars + (Const(tag),)))
        return ConjunctiveQuery(query.head, body,
                                name=f"fold.{query.name}")

    def fold_ucq(self, query: UnionOfConjunctiveQueries
                 ) -> UnionOfConjunctiveQueries:
        """Disjunct-wise folding of a UCQ."""
        return UnionOfConjunctiveQueries(
            [self.fold_query(d) for d in query.disjuncts],
            name=f"fold.{query.name}")
