"""Telemetry export: Prometheus text exposition + a JSONL event stream.

Both renderers work from a :meth:`MetricsRegistry.snapshot
<repro.obs.metrics.MetricsRegistry.snapshot>` dict — the same wire
form workers ship on shard outcomes — so anything that has a snapshot
(a live registry, a merged parallel run, an aggregated ledger via
:func:`repro.obs.ledger.ledger_metrics`) can be exported.  This is the
exact telemetry surface the future ``repro serve`` daemon will mount
at ``/metrics``; today the CLI's ``--prom FILE`` flag and
``repro report --prom`` write it to disk for scrapers and CI
artifacts.

Prometheus mapping (text exposition format 0.0.4):

* counter ``a.b.c`` → ``repro_a_b_c_total`` (TYPE counter);
* gauge ``a.b`` → ``repro_a_b`` (TYPE gauge);
* histogram summary ``a.b`` → ``repro_a_b_count`` / ``_sum`` /
  ``_min`` / ``_max`` gauges (the registry keeps count/total/min/max
  summaries, not buckets).

Dotted metric names are sanitized (every non ``[a-zA-Z0-9_]`` rune
becomes ``_``); the original name is preserved verbatim in the JSONL
event stream, one ``{"type": "metric", ...}`` object per instrument
after a versioned header line.
"""

from __future__ import annotations

import json
import re

from repro.obs.trace_io import atomic_write_text

__all__ = ["PROM_PREFIX", "EXPORT_VERSION", "prometheus_lines",
           "render_prometheus", "write_prometheus", "event_records",
           "render_events", "write_events"]

PROM_PREFIX = "repro"
EXPORT_VERSION = 1

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, *, suffix: str = "") -> str:
    sanitized = _SANITIZE.sub("_", name).strip("_")
    if not sanitized or not (sanitized[0].isalpha()
                             or sanitized[0] == "_"):
        sanitized = f"m_{sanitized}"
    return f"{PROM_PREFIX}_{sanitized}{suffix}"


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def prometheus_lines(snapshot: dict) -> list[str]:
    """Render a registry snapshot as exposition-format lines."""
    lines: list[str] = []
    for name in sorted(snapshot.get("counters") or {}):
        value = snapshot["counters"][name]
        metric = _metric_name(name, suffix="_total")
        lines.append(f"# HELP {metric} counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name in sorted(snapshot.get("gauges") or {}):
        value = snapshot["gauges"][name]
        metric = _metric_name(name)
        lines.append(f"# HELP {metric} gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name in sorted(snapshot.get("histograms") or {}):
        summary = snapshot["histograms"][name]
        base = _metric_name(name)
        lines.append(f"# HELP {base} summary {name}")
        for part, key in (("_count", "count"), ("_sum", "total"),
                          ("_min", "min"), ("_max", "max")):
            lines.append(f"# TYPE {base}{part} gauge")
            lines.append(
                f"{base}{part} {_format_value(summary[key])}")
    return lines


def render_prometheus(snapshot: dict) -> str:
    return "\n".join(prometheus_lines(snapshot)) + "\n"


def write_prometheus(path: str, snapshot: dict) -> None:
    """Atomically write the exposition text (temp file + rename)."""
    atomic_write_text(path, render_prometheus(snapshot))


def event_records(snapshot: dict, *,
                  source: str | None = None) -> list[dict]:
    """The JSONL event stream: a header plus one record per metric,
    dotted names preserved."""
    records: list[dict] = [{"type": "header",
                            "version": EXPORT_VERSION,
                            "source": source}]
    for name in sorted(snapshot.get("counters") or {}):
        records.append({"type": "metric", "kind": "counter",
                        "name": name,
                        "value": snapshot["counters"][name]})
    for name in sorted(snapshot.get("gauges") or {}):
        records.append({"type": "metric", "kind": "gauge",
                        "name": name,
                        "value": snapshot["gauges"][name]})
    for name in sorted(snapshot.get("histograms") or {}):
        records.append({"type": "metric", "kind": "histogram",
                        "name": name,
                        **snapshot["histograms"][name]})
    return records


def render_events(snapshot: dict, *, source: str | None = None) -> str:
    return "".join(json.dumps(record, ensure_ascii=False,
                              sort_keys=True) + "\n"
                   for record in event_records(snapshot, source=source))


def write_events(path: str, snapshot: dict, *,
                 source: str | None = None) -> None:
    """Atomically write the event stream (temp file + rename)."""
    atomic_write_text(path, render_events(snapshot, source=source))
