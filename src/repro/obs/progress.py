"""Live progress and ETA for long decisions (the ``--progress`` flag).

A :class:`ProgressReporter` rides the governor's ``progress`` slot —
like ``obs``, the governor is the one object already threaded through
every search path, and :meth:`~repro.runtime.governor.ExecutionGovernor.
tick` never consults the slot, so the hot loops pay nothing.

Two numerator sources feed it:

* **serial** — a daemon poll thread reads the governor's budget ledger
  (``budget.snapshot()``) on an interval; the ledger is charged on
  every tick, so the sum is exactly the work admitted so far;
* **parallel** — the shard supervisor forwards every heartbeat
  ``"progress"`` snapshot and final outcome
  (:meth:`update_shard`), since worker ticks only reach the parent
  budget at reconciliation.

The two can overlap once the pool reconciles (the parent *absorbs* the
workers' ticks), so the combined value is
``max(serial, serial_base_at_first_shard + Σ shard ticks)`` — monotone
and never double-counted.

The denominator is the static cost model's ``predicted_ticks``
(:func:`repro.analysis.cost.estimate_decision`), installed by the CLI
preflight via :meth:`set_total`; the model is bench-gated at within-4×
agreement, so the ETA is a real estimate, not a spinner.  Without a
total the reporter degrades to a raw tick counter.

Rendering goes to stderr: a ``\\r``-rewritten line on a TTY, sparse
full lines otherwise (CI logs).  Everything is observation-only — the
reporter never touches the search.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, TextIO

__all__ = ["ProgressReporter"]

#: Minimum seconds between TTY repaints.
_TTY_INTERVAL = 0.1
#: Minimum seconds between full lines on a non-TTY stream.
_LINE_INTERVAL = 2.0


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressReporter:
    """Percent-complete + ETA over governor ticks, rendered to stderr."""

    def __init__(self, *, total: int | None = None,
                 stream: TextIO | None = None, label: str = "",
                 poll_interval: float = 0.2) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.total = total if total and total > 0 else None
        self.label = label
        self._poll_interval = max(0.02, poll_interval)
        self._serial = 0
        self._shards: dict[int, int] = {}
        #: Serial ticks observed when the first shard update arrived —
        #: the pre-fan-out prefix the shard sums stack on top of.
        self._shard_base: int | None = None
        self._started = time.monotonic()
        self._last_render = 0.0
        self._rendered = False
        self._closed = False
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._poller: threading.Thread | None = None
        self._final_sample = lambda: None
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------

    def set_total(self, total: int | None) -> None:
        """Install the predicted-tick denominator (CLI preflight)."""
        with self._lock:
            self.total = total if total and total > 0 else None

    def update_serial(self, ticks: int) -> None:
        """Absolute tick total from the budget-ledger poll."""
        with self._lock:
            self._serial = max(self._serial, int(ticks))
            self._render()

    def update_shard(self, index: int, ticks: int) -> None:
        """Absolute tick total one shard has consumed so far (committed
        prefix + live attempt), from the shard supervisor."""
        with self._lock:
            if self._shard_base is None:
                self._shard_base = self._serial
            previous = self._shards.get(index, 0)
            self._shards[index] = max(previous, int(ticks))
            self._render()

    @property
    def value(self) -> int:
        """The monotone combined tick numerator."""
        combined = self._serial
        if self._shard_base is not None:
            combined = max(combined,
                           self._shard_base + sum(self._shards.values()))
        return combined

    # ------------------------------------------------------------------
    # The serial poll thread
    # ------------------------------------------------------------------

    def start_polling(self, budget: Any) -> None:
        """Poll ``budget.snapshot()`` on a daemon thread until closed."""
        if self._poller is not None:
            return

        def sample() -> None:
            try:
                snapshot = budget.snapshot()
            except Exception:  # pragma: no cover - defensive
                return
            self.update_serial(sum(snapshot.values()))

        def poll() -> None:
            while not self._stop.wait(self._poll_interval):
                sample()

        self._final_sample = sample
        self._poller = threading.Thread(
            target=poll, name="repro-progress", daemon=True)
        self._poller.start()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def _line(self) -> str:
        value = self.value
        elapsed = time.monotonic() - self._started
        prefix = f"{self.label}: " if self.label else ""
        if self.total is not None:
            percent = min(100.0, 100.0 * value / self.total)
            line = (f"{prefix}{percent:5.1f}% "
                    f"({value}/{self.total} ticks)")
            if 0 < value < self.total and elapsed > 0:
                remaining = (self.total - value) * elapsed / value
                line += f" eta {_format_eta(remaining)}"
            return line
        return (f"{prefix}{value} tick(s) in "
                f"{_format_eta(elapsed)}")

    def _render(self, force: bool = False) -> None:
        # Caller holds the lock.
        if self._closed and not force:
            return
        now = time.monotonic()
        interval = _TTY_INTERVAL if self._tty else _LINE_INTERVAL
        if not force and now - self._last_render < interval:
            return
        self._last_render = now
        line = self._line()
        try:
            if self._tty:
                self.stream.write(f"\r\x1b[2K{line}")
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream
            return
        self._rendered = True

    def close(self) -> None:
        """Stop polling, paint the final state, terminate the line."""
        self._stop.set()
        if self._poller is not None:
            self._poller.join(timeout=1.0)
            self._poller = None
            # One last ledger read so a run that finished between polls
            # still paints its true final count.
            self._final_sample()
        with self._lock:
            if self._closed:
                return
            self._render(force=True)
            self._closed = True
            if self._tty and self._rendered:
                try:
                    self.stream.write("\n")
                    self.stream.flush()
                except (OSError, ValueError):  # pragma: no cover
                    pass

    def __repr__(self) -> str:
        return (f"ProgressReporter[{self.value}"
                f"/{self.total if self.total is not None else '?'}]")
