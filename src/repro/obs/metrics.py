"""The metrics registry: counters, gauges, histograms, one snapshot API.

Before this module the library's runtime counters lived in four
unrelated places — ``ExecutionGovernor.ticks`` (+ the per-kind budget
ledger), ``EngineStatistics`` on the evaluation context, the immutable
:class:`~repro.core.results.SearchStatistics` on every result, and the
per-shard tick dicts the parallel workers ship home.  The registry is
the common sink: each of those feeds it through a ``record_*`` absorber
under a stable dotted name (see ``docs/OBSERVABILITY.md`` for the
catalog), and :meth:`MetricsRegistry.as_search_statistics` rebuilds a
``SearchStatistics`` from the ``search.*`` counters — making the result
dataclass a *view* over the registry rather than a parallel
bookkeeping path.

Metric kinds:

* **counter** — monotone int, merged by addition (``governor.ticks.*``,
  ``search.*``, ``span.*.calls``);
* **gauge** — last-written float (``parallel.shard.N.consumed``);
* **histogram** — count/total/min/max summary, merged pointwise
  (``span.*.seconds``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import SearchStatistics
    from repro.obs.tracer import Span

__all__ = ["MetricsRegistry", "merged_span_ticks",
           "SEARCH_PREFIX", "TICK_PREFIX"]

#: Counter namespace fed by :meth:`MetricsRegistry.record_statistics`.
SEARCH_PREFIX = "search."
#: Counter namespace fed by :meth:`MetricsRegistry.record_ticks`.
TICK_PREFIX = "governor.ticks."


class MetricsRegistry:
    """Named counters/gauges/histograms with snapshot + merge."""

    __slots__ = ("counters", "gauges", "histograms", "on_snapshot")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        #: name -> {"count": int, "total": float, "min": float,
        #:          "max": float}
        self.histograms: dict[str, dict[str, float]] = {}
        self.on_snapshot: list[Callable[[dict], None]] = []

    # ------------------------------------------------------------------
    # Primitive instruments
    # ------------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        summary = self.histograms.get(name)
        if summary is None:
            self.histograms[name] = {"count": 1, "total": value,
                                     "min": value, "max": value}
            return
        summary["count"] += 1
        summary["total"] += value
        summary["min"] = min(summary["min"], value)
        summary["max"] = max(summary["max"], value)

    # ------------------------------------------------------------------
    # Snapshot and merge
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready copy of everything; fires ``on_snapshot`` hooks
        with the copy (external sinks may ship it wherever they like)."""
        data = {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: dict(summary)
                           for name, summary in self.histograms.items()},
        }
        for hook in self.on_snapshot:
            hook(data)
        return data

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one
        (counters add, gauges last-write-wins, histograms combine) —
        how worker registries reach the parent."""
        for name, amount in (snapshot.get("counters") or {}).items():
            self.count(name, amount)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name, value)
        for name, other in (snapshot.get("histograms") or {}).items():
            summary = self.histograms.get(name)
            if summary is None:
                self.histograms[name] = dict(other)
                continue
            summary["count"] += other["count"]
            summary["total"] += other["total"]
            summary["min"] = min(summary["min"], other["min"])
            summary["max"] = max(summary["max"], other["max"])

    # ------------------------------------------------------------------
    # Absorbers for the pre-existing ad-hoc counters
    # ------------------------------------------------------------------

    def record_ticks(self, ticks: dict[str, int] | None) -> None:
        """Absorb a governor budget ledger (``{kind: ticks}``)."""
        for kind, amount in (ticks or {}).items():
            if amount > 0:
                self.count(TICK_PREFIX + kind, amount)

    def record_statistics(self, statistics: "SearchStatistics") -> None:
        """Absorb a decision's ``SearchStatistics`` — including the
        engine counters (``plans_compiled``, ``index_builds``,
        ``engine_cache_hits``) and the analyzer's warning count the
        deciders already fold into it."""
        from dataclasses import fields

        for field in fields(statistics):
            value = getattr(statistics, field.name)
            if value:
                self.count(SEARCH_PREFIX + field.name, value)

    def record_span(self, span: "Span") -> None:
        """Tracer ``on_span_end`` bridge: per-phase call counts and
        duration histograms."""
        self.count(f"span.{span.name}.calls")
        self.observe(f"span.{span.name}.seconds", span.duration)

    def record_shard(self, index: int, *, consumed: int,
                     done: bool) -> None:
        """Absorb one shard's reconciliation state."""
        self.gauge(f"parallel.shard.{index}.consumed", consumed)
        self.count("parallel.shards")
        if done:
            self.count("parallel.shards_done")

    def record_supervision(self, event: str, *,
                           shard: int | None = None) -> None:
        """Count one shard-supervisor event: ``"crash"`` (a worker died
        or went silent without reporting), ``"retry"`` (a respawn was
        scheduled), or ``"quarantine"`` (a poison shard fell back to an
        in-process serial re-run)."""
        self.count(f"parallel.{event}")
        if shard is not None:
            self.count(f"parallel.shard.{shard}.{event}")

    # ------------------------------------------------------------------
    # The SearchStatistics view
    # ------------------------------------------------------------------

    def as_search_statistics(self) -> "SearchStatistics":
        """Rebuild a :class:`~repro.core.results.SearchStatistics` from
        the ``search.*`` counters.  After ``record_statistics(stats)``
        this returns a value equal to ``stats`` (modulo earlier
        recordings, which merge additively — same as
        ``SearchStatistics.merged``)."""
        from dataclasses import fields

        from repro.core.results import SearchStatistics

        values: dict[str, int] = {}
        for field in fields(SearchStatistics):
            values[field.name] = self.counters.get(
                SEARCH_PREFIX + field.name, 0)
        return SearchStatistics(**values)

    def __repr__(self) -> str:
        return (f"MetricsRegistry[{len(self.counters)} counter(s), "
                f"{len(self.gauges)} gauge(s), "
                f"{len(self.histograms)} histogram(s)]")


def _merge_tick_dicts(into: dict[str, int],
                      ticks: dict[str, int]) -> dict[str, int]:
    for kind, amount in ticks.items():
        into[kind] = into.get(kind, 0) + amount
    return into


def merged_span_ticks(records: list[dict[str, Any]],
                      roots_only: bool = True) -> dict[str, int]:
    """Sum the tick deltas of span *records* (roots only by default —
    child deltas are already contained in their parents')."""
    totals: dict[str, int] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        if roots_only and record.get("parent") is not None:
            continue
        _merge_tick_dicts(totals, record.get("ticks") or {})
    return totals
