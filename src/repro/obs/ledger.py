"""The persistent run ledger: one append-only JSONL file per site.

Every CLI decision, corpus scenario, and benchmark row can append a
:class:`RunRecord` — what was decided (a content key from
:mod:`repro.engine.keys`, so identical decisions correlate across
processes), how (backend, workers, governor outcome), what came out
(verdict, per-kind tick ledger, ``SearchStatistics``), how long it
took, and where the trace/metrics artifacts went.  The ledger is the
cross-run layer the future ``repro serve`` service will publish:
``repro report`` aggregates it (latency percentiles, verdict mix,
cache hit rates, per-backend comparison) and ``repro history --gate``
diffs a fresh ledger against the committed ``BENCH_*.json`` baselines
(see :mod:`repro.obs.history`).

Crash safety: records are appended with ``O_APPEND`` as one
``os.write`` per line under an advisory ``flock`` (where available),
so concurrent writers interleave whole lines and an interrupted run
never leaves a torn record — property-tested with two processes in
``tests/test_ledger.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import SearchStatistics

__all__ = ["LEDGER_VERSION", "LEDGER_ENV", "RunRecord", "run_key",
           "statistics_fields", "append_record", "read_ledger",
           "check_ledger", "summarize_ledger", "render_summary",
           "ledger_report", "ledger_metrics", "group_name"]

LEDGER_VERSION = 1

#: Environment variable naming the default ledger file; the CLI flags
#: and ``benchmarks/report_schema.write_report`` both consult it.
LEDGER_ENV = "REPRO_LEDGER"

_REQUIRED_KEYS = ("v", "procedure", "verdict", "wall_s")


@dataclasses.dataclass
class RunRecord:
    """One run's worth of cross-process telemetry."""

    procedure: str
    label: str = ""
    #: Content-key digest from :func:`run_key` ("" when unavailable).
    key: str = ""
    verdict: str = ""
    backend: str = "python"
    workers: int = 1
    wall_s: float = 0.0
    exhausted: bool = False
    #: Governor outcome for interrupted runs ("budget", "deadline", ...).
    interrupted: str | None = None
    #: The governor's final per-kind tick ledger (``budget.snapshot()``).
    ticks: dict[str, int] = dataclasses.field(default_factory=dict)
    #: Non-zero ``SearchStatistics`` fields.
    statistics: dict[str, int] = dataclasses.field(default_factory=dict)
    #: Artifact paths (``{"trace": ..., "metrics": ..., "prom": ...}``).
    artifacts: dict[str, str] = dataclasses.field(default_factory=dict)
    extra: dict = dataclasses.field(default_factory=dict)

    def to_payload(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["wall_s"] = round(float(self.wall_s), 6)
        payload["v"] = LEDGER_VERSION
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "RunRecord":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in payload.items()
                      if key in fields})


def run_key(procedure: str, *objects: Any) -> str:
    """A short content-key digest for one decision.

    Built on :func:`repro.engine.keys.decision_key` — the same
    content-addressed fingerprints the engine's cross-call caches use —
    so the *same* decision appends the *same* key from any process.
    """
    from repro.engine.keys import decision_key

    digest = hashlib.sha256(
        repr(decision_key(procedure, *objects)).encode("utf-8"))
    return digest.hexdigest()[:16]


def statistics_fields(statistics: "SearchStatistics | None",
                      ) -> dict[str, int]:
    """The non-zero ``SearchStatistics`` fields, ledger-shaped."""
    if statistics is None:
        return {}
    return {key: value
            for key, value in dataclasses.asdict(statistics).items()
            if value}


# ----------------------------------------------------------------------
# Crash-safe append + read
# ----------------------------------------------------------------------

def _flock(fd: int, acquire: bool) -> None:
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platform
        return
    fcntl.flock(fd, fcntl.LOCK_EX if acquire else fcntl.LOCK_UN)


def append_record(path: str, record: RunRecord) -> None:
    """Append *record* as one line; safe under concurrent writers.

    ``O_APPEND`` + a single ``os.write`` of the whole line means the
    kernel seeks and writes atomically per call; the advisory ``flock``
    additionally serializes writers on filesystems where large appends
    could interleave.  There is no temp-file dance here on purpose —
    an append-only file is never truncated, so a crash mid-write can
    at worst lose its own final line, never a predecessor's.
    """
    line = json.dumps(record.to_payload(), ensure_ascii=False,
                      sort_keys=True, default=repr) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        _flock(fd, True)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            _flock(fd, False)
    finally:
        os.close(fd)


def read_ledger(path: str) -> list[RunRecord]:
    """Parse every line; raises ``ValueError`` on a torn/corrupt line."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number} is not valid JSON: {error}"
                    ) from error
            records.append(RunRecord.from_payload(payload))
    return records


def check_ledger(path: str) -> list[str]:
    """Validate a ledger file; returns the problems (empty = valid)."""
    problems: list[str] = []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as error:
        return [f"cannot read {path}: {error}"]
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            problems.append(f"line {line_number} is not valid JSON")
            continue
        if payload.get("v") != LEDGER_VERSION:
            problems.append(f"line {line_number}: unsupported ledger "
                            f"version {payload.get('v')!r}")
        missing = [key for key in _REQUIRED_KEYS if key not in payload]
        if missing:
            problems.append(f"line {line_number}: missing keys {missing}")
    return problems


# ----------------------------------------------------------------------
# Aggregation: `repro report`
# ----------------------------------------------------------------------

def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def group_name(record: RunRecord) -> str:
    """The pairing identity ``repro history`` matches rows on."""
    return (f"{record.procedure}/{record.label or '-'}/"
            f"{record.backend}/w{record.workers}")


def _cache_hit_rate(statistics: dict[str, int]) -> float | None:
    hits = statistics.get("engine_cache_hits", 0)
    evaluations = (statistics.get("full_evaluations", 0)
                   + statistics.get("delta_evaluations", 0))
    if hits + evaluations == 0:
        return None
    return hits / (hits + evaluations)


def summarize_ledger(records: Sequence[RunRecord]) -> dict:
    """The ``repro report`` aggregate: latency percentiles, verdict
    mix, cache hit rates, and a per-backend comparison."""
    procedures: dict[str, dict] = {}
    backends: dict[str, list[float]] = {}
    keys = set()
    for record in records:
        if record.key:
            keys.add(record.key)
        bucket = procedures.setdefault(record.procedure, {
            "walls": [], "verdicts": {}, "statistics": {},
            "exhausted": 0})
        bucket["walls"].append(record.wall_s)
        if record.verdict:
            bucket["verdicts"][record.verdict] = \
                bucket["verdicts"].get(record.verdict, 0) + 1
        if record.exhausted:
            bucket["exhausted"] += 1
        for field, value in record.statistics.items():
            bucket["statistics"][field] = \
                bucket["statistics"].get(field, 0) + value
        backends.setdefault(record.backend, []).append(record.wall_s)

    def _proc_summary(bucket: dict) -> dict:
        summary = {
            "runs": len(bucket["walls"]),
            "wall_p50_s": round(_percentile(bucket["walls"], 0.50), 6),
            "wall_p90_s": round(_percentile(bucket["walls"], 0.90), 6),
            "verdicts": dict(sorted(bucket["verdicts"].items())),
            "exhausted": bucket["exhausted"],
        }
        rate = _cache_hit_rate(bucket["statistics"])
        if rate is not None:
            summary["cache_hit_rate"] = round(rate, 4)
        return summary

    return {
        "records": len(records),
        "distinct_keys": len(keys),
        "procedures": {name: _proc_summary(bucket)
                       for name, bucket in sorted(procedures.items())},
        "backends": {name: {"runs": len(walls),
                            "wall_p50_s": round(
                                _percentile(walls, 0.50), 6)}
                     for name, walls in sorted(backends.items())},
    }


def render_summary(summary: dict) -> str:
    lines = [f"ledger: {summary['records']} record(s), "
             f"{summary['distinct_keys']} distinct decision key(s)"]
    for name, proc in summary["procedures"].items():
        verdicts = ", ".join(f"{verdict}×{count}" for verdict, count
                             in proc["verdicts"].items()) or "-"
        line = (f"  {name}: {proc['runs']} run(s), "
                f"p50 {proc['wall_p50_s']:.4f}s, "
                f"p90 {proc['wall_p90_s']:.4f}s, verdicts {verdicts}")
        if proc["exhausted"]:
            line += f", exhausted×{proc['exhausted']}"
        if "cache_hit_rate" in proc:
            line += f", cache hit rate {proc['cache_hit_rate']:.0%}"
        lines.append(line)
    backend_bits = ", ".join(
        f"{name} p50 {stats['wall_p50_s']:.4f}s ({stats['runs']})"
        for name, stats in summary["backends"].items())
    if backend_bits:
        lines.append(f"  backends: {backend_bits}")
    return "\n".join(lines)


def ledger_report(records: Sequence[RunRecord], *,
                  smoke: bool = False) -> dict:
    """Derive a ``BENCH_*.json``-shaped report (name ``"ledger"``) from
    ledger records, one row per :func:`group_name` group — the current
    side ``repro history`` pairs against a committed
    ``BENCH_ledger.json`` baseline."""
    groups: dict[str, list[RunRecord]] = {}
    for record in records:
        groups.setdefault(group_name(record), []).append(record)
    rows = []
    for name in sorted(groups):
        members = groups[name]
        walls = [record.wall_s for record in members]
        verdicts: dict[str, int] = {}
        for record in members:
            if record.verdict:
                verdicts[record.verdict] = \
                    verdicts.get(record.verdict, 0) + 1
        last = members[-1]
        rows.append({
            "name": name,
            "wall_s": round(_percentile(walls, 0.50), 6),
            "ticks": dict(last.ticks),
            "verdicts": verdicts,
            "extra": {"runs": len(members),
                      "wall_p90_s": round(_percentile(walls, 0.90), 6),
                      "key": last.key},
        })
    return {
        "bench_report_version": 1,
        "name": "ledger",
        "smoke": bool(smoke),
        "rows": rows,
        "gates": [],
        "extra": {"records": len(records)},
    }


def ledger_metrics(records: Sequence[RunRecord]) -> dict:
    """A :class:`~repro.obs.metrics.MetricsRegistry` snapshot aggregated
    over ledger records, for the Prometheus/event exporters."""
    from repro.obs.metrics import SEARCH_PREFIX, TICK_PREFIX, \
        MetricsRegistry

    registry = MetricsRegistry()
    for record in records:
        registry.count(f"ledger.runs.{record.procedure}")
        if record.verdict:
            registry.count(f"ledger.verdict.{record.verdict}")
        if record.exhausted:
            registry.count("ledger.exhausted")
        registry.observe("ledger.wall_seconds", record.wall_s)
        for kind, amount in record.ticks.items():
            if amount > 0:
                registry.count(TICK_PREFIX + kind, amount)
        for field, value in record.statistics.items():
            if value:
                registry.count(SEARCH_PREFIX + field, value)
    registry.gauge("ledger.records", float(len(records)))
    return registry.snapshot()
