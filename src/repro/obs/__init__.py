"""``repro.obs`` — unified tracing, metrics, and profiling.

The observability layer rides on the :class:`ExecutionGovernor`: an
:class:`Observation` (one :class:`~repro.obs.tracer.Tracer` plus one
:class:`~repro.obs.metrics.MetricsRegistry`) attaches to the
governor's ``obs`` slot and every instrumented site reaches it through
:func:`obs_of`.  No governor — or a governor without an observation —
means :func:`obs_span` hands back a shared null context and the hot
paths stay exactly as fast as before; that invariant is gated by
``benchmarks/bench_engine.py``.

Two hard rules keep tracing *observation-only* (property-tested in
``tests/test_obs.py``):

* instrumentation never charges the governor, touches the search
  order, or changes any verdict/witness/statistics;
* spans read the budget ledger (``budget.snapshot``) to attribute
  ticks to phases, but never write it.

See ``docs/OBSERVABILITY.md`` for the span taxonomy, the metrics
catalog, and the JSONL trace format.
"""

from __future__ import annotations

import functools
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Callable, ContextManager

from repro.obs.export import (event_records, prometheus_lines,
                              render_events, render_prometheus,
                              write_events, write_prometheus)
from repro.obs.ledger import (LEDGER_ENV, LEDGER_VERSION, RunRecord,
                              append_record, check_ledger,
                              ledger_metrics, ledger_report,
                              read_ledger, render_summary, run_key,
                              statistics_fields, summarize_ledger)
from repro.obs.metrics import MetricsRegistry, merged_span_ticks
from repro.obs.profile import profile_rows, render_profile
from repro.obs.progress import ProgressReporter
from repro.obs.tracer import Span, Tracer
from repro.obs.trace_io import (PROCEDURE_TICK_FIELDS, TRACE_VERSION,
                                atomic_write_text, check_trace,
                                read_trace, trace_records, write_trace)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.governor import ExecutionGovernor

__all__ = [
    "Observation", "obs_of", "obs_span", "traced",
    "Tracer", "Span", "MetricsRegistry",
    "profile_rows", "render_profile", "merged_span_ticks",
    "trace_records", "write_trace", "read_trace", "check_trace",
    "atomic_write_text", "TRACE_VERSION", "PROCEDURE_TICK_FIELDS",
    # The cross-run layer (run ledger, live progress, export).
    "LEDGER_VERSION", "LEDGER_ENV", "RunRecord", "run_key",
    "statistics_fields", "append_record", "read_ledger", "check_ledger",
    "summarize_ledger", "render_summary", "ledger_report",
    "ledger_metrics", "ProgressReporter",
    "prometheus_lines", "render_prometheus", "write_prometheus",
    "event_records", "render_events", "write_events",
]

#: Shared, stateless "not tracing" context — ``nullcontext`` keeps no
#: per-use state, so one instance serves every disabled span site.
_NULL_SPAN: ContextManager[None] = nullcontext()


class Observation:
    """One tracer + one metrics registry, bound to a governor."""

    __slots__ = ("tracer", "metrics", "_annotations")

    def __init__(self, *, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Attributes queued for the next root span (see :meth:`annotate`).
        self._annotations: dict[str, Any] = {}
        # Bridge: every completed span lands in the registry as a call
        # counter + duration histogram.
        self.tracer.on_span_end.append(self.metrics.record_span)

    @classmethod
    def attach(cls, governor: "ExecutionGovernor", *,
               enabled: bool = True,
               max_spans: int = 100_000) -> "Observation":
        """Create an observation and bind it to *governor*: spans will
        diff the governor's budget ledger for tick attribution, and
        every instrumented site on the governor's path will see it."""
        observation = cls(tracer=Tracer(enabled=enabled,
                                        max_spans=max_spans))
        if governor.budget is not None:
            observation.tracer.bind_tick_source(governor.budget.snapshot)
        governor.obs = observation
        return observation

    # ------------------------------------------------------------------
    # Root-span annotations
    # ------------------------------------------------------------------

    def annotate(self, **attributes: Any) -> None:
        """Queue *attributes* for the next ``@traced`` root span.

        The CLI preflight records the static cost estimate here before
        calling a decider; :func:`traced` drains the queue into the
        decision's root span, so the prediction travels with the trace
        (``repro trace`` shows it next to the actual tick ledger).
        Harmless without a consumer — the queue is just dropped.
        """
        self._annotations.update(attributes)

    def take_annotations(self) -> dict[str, Any]:
        """Drain the queued root-span attributes."""
        taken, self._annotations = self._annotations, {}
        return taken

    # ------------------------------------------------------------------
    # Finalization and parallel merge
    # ------------------------------------------------------------------

    def finalize(self, governor: "ExecutionGovernor | None" = None,
                 statistics: Any | None = None) -> None:
        """Absorb the run's terminal counters into the registry: the
        governor's per-kind tick ledger and the decision's
        ``SearchStatistics`` (engine counters and analyzer warnings
        included)."""
        if governor is not None and governor.budget is not None:
            self.metrics.record_ticks(governor.budget.snapshot())
        if statistics is not None:
            self.metrics.record_statistics(statistics)

    def payload(self) -> dict:
        """The picklable wire form a worker ships home on its
        :class:`~repro.parallel.worker.ShardOutcome`."""
        return {"spans": self.tracer.to_records(),
                "metrics": self.metrics.snapshot()}

    def absorb_outcomes(self, outcomes: Any) -> None:
        """Rank-merge worker observations (and per-shard bookkeeping)
        into this one, in shard order.  Outcomes without a payload —
        done shards answered inline by the pool — still contribute
        their consumed/done gauges."""
        for outcome in sorted(outcomes, key=lambda o: o.index):
            self.metrics.record_shard(
                outcome.index, consumed=outcome.consumed,
                done=(outcome.kind == "complete"))
            payload = getattr(outcome, "obs", None)
            if not payload:
                continue
            # Retried shards get a per-attempt lane (``shard-N.aK``) so
            # the per-lane overlap checks of ``check_trace`` stay valid
            # even though attempts of one shard overlap in time.
            lane = f"shard-{outcome.index}"
            attempt = getattr(outcome, "attempt", 0)
            if attempt:
                lane += f".a{attempt}"
            self.tracer.absorb(payload.get("spans") or [], lane=lane)
            self.metrics.merge(payload.get("metrics") or {})

    def __repr__(self) -> str:
        return f"Observation[{self.tracer!r}, {self.metrics!r}]"


def obs_of(governor: "ExecutionGovernor | None") -> Observation | None:
    """The observation attached to *governor*, if any."""
    return getattr(governor, "obs", None)


def obs_span(observation: Observation | None, name: str,
             **attributes: Any) -> ContextManager[Span | None]:
    """A phase span under *observation*, or the shared null context
    when nothing is observing — the one-line instrumentation entry
    point used by every decider, solver, and worker."""
    if observation is None or not observation.tracer.enabled:
        return _NULL_SPAN
    return observation.tracer.span(name, **attributes)


def traced(name: str) -> Callable:
    """Wrap a decision procedure in a root span named *name*.

    The procedure's keyword-only ``governor`` argument carries the
    observation (if any); without one the wrapper is a single dict
    lookup and the call proceeds untouched.  Used on the public
    deciders so one span brackets the whole decision — setup phases,
    the governed search loop, nested verification calls, and (via the
    pool's reconciliation) any grafted worker spans."""

    def decorate(procedure: Callable) -> Callable:
        @functools.wraps(procedure)
        def wrapped(*args: Any, **kwargs: Any) -> Any:
            observation = obs_of(kwargs.get("governor"))
            if observation is None or not observation.tracer.enabled:
                return procedure(*args, **kwargs)
            with observation.tracer.span(
                    name, **observation.take_annotations()):
                return procedure(*args, **kwargs)
        return wrapped

    return decorate
