"""The phase-profile table: where did the decision spend its time?

Aggregates span records by phase name into a fixed-width text table in
the spirit of ``cProfile``'s output — one row per phase, sorted by
total time — with *own* time (total minus time attributed to child
spans) and the per-kind governor ticks charged inside the phase.  See
``docs/OBSERVABILITY.md`` for a reading guide.
"""

from __future__ import annotations

__all__ = ["profile_rows", "render_profile"]


def profile_rows(records: list[dict]) -> list[dict]:
    """Aggregate span *records* (wire form) into per-phase rows:
    ``{"name", "calls", "total_s", "own_s", "ticks"}``, sorted by
    ``total_s`` descending."""
    child_time: dict[int, float] = {}
    spans = [r for r in records if r.get("type") == "span"]
    for record in spans:
        parent = record.get("parent")
        if parent is not None:
            child_time[parent] = (child_time.get(parent, 0.0)
                                  + record["dur"])
    phases: dict[str, dict] = {}
    for record in spans:
        row = phases.setdefault(record["name"], {
            "name": record["name"], "calls": 0,
            "total_s": 0.0, "own_s": 0.0, "ticks": {}})
        row["calls"] += 1
        row["total_s"] += record["dur"]
        row["own_s"] += max(
            0.0, record["dur"] - child_time.get(record["id"], 0.0))
        for kind, amount in (record.get("ticks") or {}).items():
            row["ticks"][kind] = row["ticks"].get(kind, 0) + amount
    return sorted(phases.values(),
                  key=lambda row: (-row["total_s"], row["name"]))


def _format_ticks(ticks: dict[str, int]) -> str:
    if not ticks:
        return "-"
    return ", ".join(f"{kind}={amount}"
                     for kind, amount in sorted(ticks.items()))


def render_profile(records: list[dict]) -> str:
    """The text phase-profile table for span *records*."""
    rows = profile_rows(records)
    if not rows:
        return "phase profile: no spans recorded"
    name_width = max(5, max(len(row["name"]) for row in rows))
    lines = [
        f"{'phase':<{name_width}}  {'calls':>6}  {'total s':>10}  "
        f"{'own s':>10}  ticks",
        f"{'-' * name_width}  {'-' * 6}  {'-' * 10}  {'-' * 10}  "
        f"{'-' * 5}",
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<{name_width}}  {row['calls']:>6}  "
            f"{row['total_s']:>10.6f}  {row['own_s']:>10.6f}  "
            f"{_format_ticks(row['ticks'])}")
    return "\n".join(lines)
