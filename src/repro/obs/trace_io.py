"""JSONL trace export, import, and validation.

A trace file is one JSON object per line:

* ``{"type": "header", "version": 1, "procedure": ..., "command": ...}``
  — exactly one, first;
* ``{"type": "span", "id", "parent", "name", "start", "end", "dur",
  "ticks", "attrs"}`` — one per completed span, in completion order;
* ``{"type": "metrics", "counters", "gauges", "histograms"}`` — the
  registry snapshot (optional);
* ``{"type": "statistics", "procedure", "fields", "ticks", "verdict",
  "exhausted"}`` — the decision's ``SearchStatistics`` (``fields``) and
  the governor's final per-kind tick ledger (``ticks``), optional.

:func:`check_trace` is the validator behind ``repro trace --check``:
structural well-formedness (unique ids, no orphans, children inside
their parents, no overlap between spans that shared a thread of
execution) plus the accounting invariants — the root spans' tick deltas
must sum to the governor ledger, and for procedures whose search loop
ticks once per examined unit, the ledger must equal the corresponding
``SearchStatistics`` field.

Spans grafted from parallel workers carry a ``lane`` attribute
(``shard-N``, or ``shard-N.aK`` for a supervised retry's attempt K);
overlap and duration-sum checks apply *per lane*, since two workers —
or two attempts at the same shard — legitimately run wall-clock-
concurrently under one parent.  The shard supervisor additionally
emits ``supervisor.retry`` event spans (zero-duration markers with
``index``/``attempt``/``reason`` attributes) and a
``supervisor.quarantine`` span bracketing a poison shard's in-process
re-run; both live in the main lane and charge no ticks, so the root
tick-delta accounting is unaffected.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import SearchStatistics

__all__ = ["TRACE_VERSION", "trace_records", "write_trace",
           "read_trace", "check_trace", "PROCEDURE_TICK_FIELDS",
           "atomic_write_text"]

TRACE_VERSION = 1

#: Procedures whose hot loop ticks the governor exactly once per unit
#: folded into the named ``SearchStatistics`` field — for these,
#: ``check_trace`` enforces ledger == statistics equality (on
#: non-exhausted runs; an interrupting tick is admitted to the ledger
#: but its unit of work never ran).
PROCEDURE_TICK_FIELDS: dict[str, dict[str, str]] = {
    "rcdp": {"valuations": "valuations_examined"},
    "missing": {"valuations": "valuations_examined"},
    "brute-rcdp": {"extensions": "valuations_examined"},
    "brute-rcqp": {"candidates": "candidate_sets_examined"},
}

_SPAN_KEYS = ("id", "parent", "name", "start", "end", "dur", "ticks")


def trace_records(span_records: Iterable[dict], *,
                  procedure: str | None = None,
                  command: str | None = None,
                  metrics: dict | None = None,
                  statistics: "SearchStatistics | None" = None,
                  ticks: dict[str, int] | None = None,
                  verdict: str | None = None,
                  exhausted: bool = False) -> list[dict]:
    """Assemble the full record stream for one traced decision."""
    records: list[dict] = [{"type": "header", "version": TRACE_VERSION,
                            "procedure": procedure, "command": command}]
    records.extend(span_records)
    if metrics is not None:
        records.append({"type": "metrics", **metrics})
    if statistics is not None or ticks is not None:
        records.append({
            "type": "statistics",
            "procedure": procedure,
            "fields": (dataclasses.asdict(statistics)
                       if statistics is not None else {}),
            "ticks": dict(ticks or {}),
            "verdict": verdict,
            "exhausted": exhausted,
        })
    return records


def atomic_write_text(path: str, text: str) -> None:
    """Write *text* crash-safely: a sibling temp file, flushed and
    fsynced, then atomically renamed over *path*.  An interrupted
    writer leaves either the old file or the new one — never a
    truncated artifact that ``repro trace --check`` would reject."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:  # pragma: no cover - already renamed/removed
            pass
        raise


def write_trace(path: str, records: Iterable[dict]) -> None:
    atomic_write_text(path, "".join(
        json.dumps(record, ensure_ascii=False, default=repr) + "\n"
        for record in records))


def read_trace(path: str) -> list[dict]:
    records = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"line {line_number} is not valid JSON: {error}"
                    ) from error
    return records


def _lane(record: dict) -> str:
    return (record.get("attrs") or {}).get("lane", "main")


def check_trace(records: list[dict], *,
                eps: float = 1e-6) -> list[str]:
    """Validate a trace; returns the list of problems (empty = valid)."""
    problems: list[str] = []
    headers = [r for r in records if r.get("type") == "header"]
    if len(headers) != 1:
        problems.append(f"expected exactly one header record, "
                        f"found {len(headers)}")
    elif headers[0].get("version") != TRACE_VERSION:
        problems.append(f"unsupported trace version "
                        f"{headers[0].get('version')!r}")
    elif records[0].get("type") != "header":
        problems.append("header record is not first")

    spans = [r for r in records if r.get("type") == "span"]
    by_id: dict[Any, dict] = {}
    for span in spans:
        missing = [key for key in _SPAN_KEYS if key not in span]
        if missing:
            problems.append(f"span record missing keys {missing}: "
                            f"{span.get('name', '?')}")
            continue
        if span["id"] in by_id:
            problems.append(f"duplicate span id {span['id']}")
            continue
        by_id[span["id"]] = span
        if span["end"] < span["start"] - eps:
            problems.append(
                f"span {span['name']}#{span['id']} ends before it "
                f"starts")

    children: dict[Any, list[dict]] = {}
    for span in by_id.values():
        parent = span["parent"]
        if parent is None:
            children.setdefault(None, []).append(span)
            continue
        if parent not in by_id:
            problems.append(f"orphan span {span['name']}#{span['id']}: "
                            f"parent {parent} does not exist")
            continue
        children.setdefault(parent, []).append(span)
        outer = by_id[parent]
        if (span["start"] < outer["start"] - eps
                or span["end"] > outer["end"] + eps):
            problems.append(
                f"span {span['name']}#{span['id']} is not contained "
                f"in its parent {outer['name']}#{outer['id']}")

    for parent, group in children.items():
        lanes: dict[str, list[dict]] = {}
        for span in group:
            lanes.setdefault(_lane(span), []).append(span)
        for lane, siblings in lanes.items():
            siblings.sort(key=lambda s: (s["start"], s["end"]))
            for earlier, later in zip(siblings, siblings[1:]):
                if later["start"] < earlier["end"] - eps:
                    problems.append(
                        f"spans {earlier['name']}#{earlier['id']} and "
                        f"{later['name']}#{later['id']} overlap in "
                        f"lane {lane!r}")
            if parent is not None:
                total = sum(s["dur"] for s in siblings)
                outer = by_id[parent]
                if total > outer["dur"] + eps:
                    problems.append(
                        f"children of {outer['name']}#{outer['id']} in "
                        f"lane {lane!r} total {total:.6f}s, exceeding "
                        f"the parent's {outer['dur']:.6f}s")

    stats_records = [r for r in records if r.get("type") == "statistics"]
    if len(stats_records) > 1:
        problems.append(f"expected at most one statistics record, "
                        f"found {len(stats_records)}")
    if stats_records:
        record = stats_records[0]
        ledger = record.get("ticks") or {}
        root_ticks: dict[str, int] = {}
        for span in children.get(None, ()):
            for kind, amount in (span.get("ticks") or {}).items():
                root_ticks[kind] = root_ticks.get(kind, 0) + amount
        for kind in sorted(set(ledger) | set(root_ticks)):
            if ledger.get(kind, 0) != root_ticks.get(kind, 0):
                problems.append(
                    f"root spans attribute {root_ticks.get(kind, 0)} "
                    f"{kind!r} tick(s) but the governor ledger records "
                    f"{ledger.get(kind, 0)}")
        mapping = PROCEDURE_TICK_FIELDS.get(record.get("procedure"))
        if mapping and not record.get("exhausted"):
            fields = record.get("fields") or {}
            for kind, field in mapping.items():
                if kind in ledger or field in fields:
                    if ledger.get(kind, 0) != fields.get(field, 0):
                        problems.append(
                            f"ledger {kind!r} = {ledger.get(kind, 0)} "
                            f"!= statistics {field} = "
                            f"{fields.get(field, 0)}")
    return problems
