"""Regression-gated perf history: diff fresh runs against baselines.

``repro history --gate`` is the CI entry point.  It does three things:

1. **Baseline integrity.**  Every committed ``BENCH_*.json`` report is
   structurally validated and its recorded *enforced* gates are
   re-derived from ``required``/``measured`` — a baseline that fails
   its own gates (or was hand-edited into passing) is a problem even
   before any current run is considered.

2. **Paired diffing.**  Current reports — typically a
   :func:`repro.obs.ledger.ledger_report` derived from a fresh ledger
   — are paired with the baseline of the same report ``name``, row by
   row (row names are the pairing identity, e.g.
   ``rcdp/crm_q0_area_code/python/w1``).  For every pair:

   * **ticks** must match exactly on every kind both sides recorded —
     tick counts are deterministic, so any drift is a real behavioral
     regression, not noise;
   * **verdict mixes** must match — a verdict flip is never noise;
   * **wall times** contribute a ratio ``current / baseline``.

3. **The wall gate.**  Wall clocks are noisy per row, so the judged
   statistic is the *median* ratio across all pairs, gated against
   ``--factor`` (default ``1.75`` — comfortably above machine noise,
   comfortably below the 2× synthetic slowdown CI injects via
   ``--slowdown`` to prove the gate trips).

Unpaired rows on either side are reported informationally, never
fatally: baselines legitimately contain rows a quick workload does not
revisit.
"""

from __future__ import annotations

import dataclasses
import glob
import json
import os
import statistics as _statistics
from typing import Sequence

__all__ = ["HISTORY_FACTOR", "RowPair", "HistoryResult",
           "discover_baselines", "load_bench_report", "report_problems",
           "diff_reports", "render_history"]

#: Default ceiling on the median paired wall-time ratio.
HISTORY_FACTOR = 1.75

_REPORT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class RowPair:
    """One (baseline row, current row) comparison."""

    report: str
    name: str
    baseline_wall_s: float
    current_wall_s: float
    #: ``current / baseline`` (slowdown already applied); None when the
    #: baseline wall is zero.
    ratio: float | None
    problems: tuple[str, ...]


@dataclasses.dataclass
class HistoryResult:
    """Everything ``repro history`` prints and gates on."""

    baseline_problems: list[str]
    regressions: list[str]
    pairs: list[RowPair]
    unpaired_current: list[str]
    baselines_checked: list[str]
    median_ratio: float | None
    factor: float

    @property
    def ok(self) -> bool:
        return not self.baseline_problems and not self.regressions


def discover_baselines(path: str) -> list[str]:
    """Baseline report files: a directory is globbed for
    ``BENCH_*.json``; a file is itself."""
    if os.path.isdir(path):
        return sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
    return [path]


def load_bench_report(path: str) -> dict:
    """Load and structurally validate one BENCH-shaped report."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if not isinstance(report, dict):
        raise ValueError(f"{path}: report is not a JSON object")
    if report.get("bench_report_version") != _REPORT_VERSION:
        raise ValueError(
            f"{path}: unsupported bench_report_version "
            f"{report.get('bench_report_version')!r}")
    if not isinstance(report.get("rows"), list):
        raise ValueError(f"{path}: missing rows list")
    return report


def report_problems(report: dict, *, source: str = "") -> list[str]:
    """Re-derive every enforced gate from its recorded
    required/measured values; a failing one is a baseline problem."""
    prefix = f"{source}: " if source else ""
    problems = []
    for gate in report.get("gates", []):
        if not gate.get("enforced"):
            continue
        measured = gate.get("measured")
        if measured is None:
            continue
        required = gate.get("required")
        if gate.get("higher_is_better", True):
            passed = measured >= required
            direction = "≥"
        else:
            passed = measured <= required
            direction = "≤"
        if not passed:
            problems.append(
                f"{prefix}gate {gate.get('name')}: measured {measured} "
                f"violates required {direction} {required}")
    return problems


def _tick_problems(base_row: dict, current_row: dict) -> list[str]:
    problems = []
    base_ticks = base_row.get("ticks") or {}
    current_ticks = current_row.get("ticks") or {}
    for kind in sorted(set(base_ticks) & set(current_ticks)):
        if base_ticks[kind] != current_ticks[kind]:
            problems.append(
                f"ticks[{kind}] {current_ticks[kind]} != baseline "
                f"{base_ticks[kind]}")
    return problems


def _verdict_problems(base_row: dict, current_row: dict) -> list[str]:
    base = base_row.get("verdicts") or {}
    current = current_row.get("verdicts") or {}
    if base and current and base != current:
        return [f"verdict mix {current} != baseline {base}"]
    return []


def diff_reports(baselines: Sequence[tuple[str, dict]],
                 currents: Sequence[tuple[str, dict]], *,
                 factor: float = HISTORY_FACTOR,
                 slowdown: float = 1.0) -> HistoryResult:
    """Judge *currents* against *baselines* (``(source, report)``
    pairs).  *slowdown* multiplies every current wall time — CI uses
    ``2.0`` as a self-test proving the gate actually trips."""
    baseline_problems: list[str] = []
    regressions: list[str] = []
    pairs: list[RowPair] = []
    unpaired: list[str] = []
    checked: list[str] = []

    by_name: dict[str, dict[str, dict]] = {}
    for source, report in baselines:
        checked.append(source)
        baseline_problems.extend(report_problems(report, source=source))
        rows = by_name.setdefault(report.get("name", "?"), {})
        for row in report.get("rows", []):
            rows[row.get("name", "?")] = row

    for source, report in currents:
        base_rows = by_name.get(report.get("name", "?"))
        if base_rows is None:
            unpaired.append(
                f"{source}: no committed baseline named "
                f"{report.get('name')!r}")
            continue
        for row in report.get("rows", []):
            row_name = row.get("name", "?")
            base_row = base_rows.get(row_name)
            if base_row is None:
                unpaired.append(f"{source}: row {row_name!r} has no "
                                f"baseline row")
                continue
            base_wall = float(base_row.get("wall_s") or 0.0)
            current_wall = float(row.get("wall_s") or 0.0) * slowdown
            ratio = (current_wall / base_wall) if base_wall > 0 else None
            problems = (_tick_problems(base_row, row)
                        + _verdict_problems(base_row, row))
            pairs.append(RowPair(
                report=report.get("name", "?"), name=row_name,
                baseline_wall_s=base_wall, current_wall_s=current_wall,
                ratio=ratio, problems=tuple(problems)))
            for problem in problems:
                regressions.append(f"{row_name}: {problem}")

    ratios = [pair.ratio for pair in pairs if pair.ratio is not None]
    median_ratio = (round(_statistics.median(ratios), 4)
                    if ratios else None)
    if median_ratio is not None and median_ratio > factor:
        regressions.append(
            f"median wall-time ratio {median_ratio} over "
            f"{len(ratios)} paired row(s) exceeds the {factor}× "
            f"budget")
    return HistoryResult(
        baseline_problems=baseline_problems, regressions=regressions,
        pairs=pairs, unpaired_current=unpaired,
        baselines_checked=checked, median_ratio=median_ratio,
        factor=factor)


def render_history(result: HistoryResult) -> str:
    lines = [f"history: {len(result.baselines_checked)} baseline "
             f"report(s) checked, {len(result.pairs)} row pair(s)"]
    if result.median_ratio is not None:
        lines.append(f"  median wall-time ratio {result.median_ratio} "
                     f"(budget {result.factor}×)")
    for pair in result.pairs:
        ratio = (f"{pair.ratio:.2f}×" if pair.ratio is not None
                 else "n/a")
        marker = "FAIL" if pair.problems else "ok"
        lines.append(f"  [{marker}] {pair.name}: "
                     f"{pair.current_wall_s:.4f}s vs baseline "
                     f"{pair.baseline_wall_s:.4f}s ({ratio})")
    for note in result.unpaired_current:
        lines.append(f"  [unpaired] {note}")
    for problem in result.baseline_problems:
        lines.append(f"  BASELINE PROBLEM: {problem}")
    for regression in result.regressions:
        lines.append(f"  REGRESSION: {regression}")
    if result.ok:
        lines.append("  no regressions")
    return "\n".join(lines)
