"""Phase spans: monotonic timings with tick attribution.

A :class:`Span` is one timed phase of a decision — ``analyze``,
``compile_plans``, ``enumerate_valuations``, a solver invocation — with
a parent link (spans nest), wall-clock bounds from
:func:`time.perf_counter` (``CLOCK_MONOTONIC``, comparable across
forked workers on the platforms the parallel layer targets), and a
per-kind *tick delta*: the governor budget-ledger work charged while
the span was open.  The :class:`Tracer` maintains the span stack, so
instrumentation sites never pass parent ids around — they just open a
span and the nesting falls out of dynamic scope.

Tracing is observation-only by construction: spans read the budget
ledger (:meth:`~repro.runtime.budget.Budget.snapshot`) but never charge
it, and a disabled tracer yields no spans at all, so a traced search
examines exactly what an untraced one does.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer"]

#: Ledger snapshots are plain ``{kind: ticks}`` dicts.
TickSnapshot = dict[str, int]


class Span:
    """One completed (or in-flight) phase."""

    __slots__ = ("name", "span_id", "parent_id", "started", "ended",
                 "attributes", "ticks", "_tick_base")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 started: float, *,
                 attributes: dict[str, Any] | None = None,
                 tick_base: TickSnapshot | None = None) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.started = started
        self.ended = started
        self.attributes = attributes or {}
        #: Per-kind governor ticks charged while the span was open.
        self.ticks: TickSnapshot = {}
        self._tick_base = tick_base

    @property
    def duration(self) -> float:
        return max(0.0, self.ended - self.started)

    def close(self, ended: float,
              tick_now: TickSnapshot | None) -> None:
        self.ended = ended
        if self._tick_base is not None and tick_now is not None:
            base = self._tick_base
            self.ticks = {
                kind: delta for kind, total in tick_now.items()
                if (delta := total - base.get(kind, 0)) > 0}
        self._tick_base = None

    def to_record(self) -> dict:
        """The JSONL wire form (see :mod:`repro.obs.trace_io`)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.started,
            "end": self.ended,
            "dur": self.duration,
            "ticks": dict(self.ticks),
            "attrs": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (f"Span[{self.name} #{self.span_id} "
                f"{self.duration * 1e3:.3f}ms ticks={self.ticks}]")


class Tracer:
    """Span factory + stack; completed spans accumulate in order.

    ``tick_source`` is a zero-argument callable returning the current
    per-kind tick ledger (normally the attached governor's
    ``budget.snapshot``); each span diffs it between open and close to
    attribute search work to phases.  ``on_span_end`` hooks fire with
    each completed span (external sinks, metrics bridging).

    ``max_spans`` bounds memory on adversarial workloads (a QBF
    expansion can invoke the SAT solver exponentially often): past the
    cap new spans are silently dropped — dropped spans are always
    leaves, so the recorded tree stays well-formed — and
    ``dropped_spans`` counts them.
    """

    __slots__ = ("enabled", "spans", "on_span_end", "max_spans",
                 "dropped_spans", "_stack", "_next_id", "_tick_source")

    def __init__(self, *, enabled: bool = True,
                 tick_source: Callable[[], TickSnapshot] | None = None,
                 max_spans: int = 100_000) -> None:
        self.enabled = enabled
        self.spans: list[Span] = []
        self.on_span_end: list[Callable[[Span], None]] = []
        self.max_spans = max_spans
        self.dropped_spans = 0
        self._stack: list[Span] = []
        self._next_id = 0
        self._tick_source = tick_source

    def bind_tick_source(
            self, source: Callable[[], TickSnapshot] | None) -> None:
        self._tick_source = source

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span | None]:
        """Open a phase span; nests under the innermost open span."""
        if not self.enabled:
            yield None
            return
        if len(self.spans) + len(self._stack) >= self.max_spans:
            self.dropped_spans += 1
            yield None
            return
        source = self._tick_source
        span = Span(
            name, self._next_id,
            self._stack[-1].span_id if self._stack else None,
            time.perf_counter(),
            attributes=attributes or None,
            tick_base=source() if source is not None else None)
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.close(time.perf_counter(),
                       source() if source is not None else None)
            self.spans.append(span)
            for hook in self.on_span_end:
                hook(span)

    def to_records(self) -> list[dict]:
        return [span.to_record() for span in self.spans]

    def absorb(self, records: list[dict], *,
               lane: str | None = None) -> None:
        """Graft spans exported by another tracer (a worker) into this
        one: ids are re-issued, the foreign roots are re-parented under
        the currently open span, and every grafted span is stamped with
        *lane* so overlap checks know which spans shared a thread of
        execution.  ``on_span_end`` hooks do not re-fire — the worker's
        own hooks already saw these spans."""
        if not self.enabled or not records:
            return
        graft_parent = self._stack[-1].span_id if self._stack else None
        remap: dict[int, int] = {}
        for record in records:
            remap[record["id"]] = self._next_id
            self._next_id += 1
        for record in records:
            attributes = dict(record.get("attrs") or {})
            if lane is not None:
                attributes.setdefault("lane", lane)
            span = Span(record["name"], remap[record["id"]],
                        remap.get(record["parent"], graft_parent),
                        record["start"], attributes=attributes or None)
            span.ended = record["end"]
            span.ticks = dict(record.get("ticks") or {})
            self.spans.append(span)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"Tracer[{state}, {len(self.spans)} span(s), "
                f"depth={len(self._stack)}]")
