"""Counting workloads over the relative-completeness margin.

The deciders answer *whether* a database is relatively complete; the
counting problems ask *how much* is missing — following the counting
variants of missing-answer reasoning studied by Arenas, Barceló and
Monet (arXiv:1912.11064), layered on the paper's margin semantics:

* :func:`count_missing_answers` — ``#{s ∉ Q(D) : s is attainable}``,
  the cardinality of :func:`~repro.core.rcdp.missing_answers_report`'s
  answer set.  By definition ``count == 0 ⟺ D`` is relatively complete.
* :func:`count_completing_extensions` — how many *distinct* consistent
  extensions ``Δ`` (instantiated query tableaux, deduplicated by the
  fresh facts they add) change the query answer.  This is the number of
  distinct certificates :func:`~repro.core.rcdp.decide_rcdp` could have
  returned over the same candidate space: the active domain plus one
  canonical fresh value per tableau variable.

Both are governed like the deciders (budget / deadline / cancellation
at every valuation boundary) and degrade gracefully to a lower-bound
count with ``exhaustive=False``.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Sequence

from repro.constraints.containment import (ContainmentConstraint,
                                           satisfies_all,
                                           satisfies_all_extension)
from repro.core.rcdp import (assert_decidable_configuration,
                             ensure_partially_closed,
                             missing_answers_report, resolve_context,
                             split_ind_constraints)
from repro.core.results import SearchStatistics
from repro.core.valuations import ActiveDomain, iter_valid_valuations
from repro.engine import EvaluationContext
from repro.errors import ExecutionInterrupted
from repro.obs import obs_of, obs_span, traced
from repro.queries.tableau import Tableau
from repro.relational.instance import Instance, extend_unvalidated
from repro.runtime import (ExecutionGovernor, resolve_governor,
                           validate_exhaustion_mode)

__all__ = ["CountReport", "count_missing_answers",
           "count_completing_extensions"]


@dataclass(frozen=True)
class CountReport:
    """Outcome of a counting workload.

    ``count`` is exact when ``exhaustive`` is True and a lower bound
    otherwise (the enumeration was truncated by a limit, a budget, or a
    deadline; ``interrupted`` carries the governor's reason when one
    tripped).
    """

    count: int
    exhaustive: bool
    statistics: SearchStatistics
    interrupted: str | None = None

    def __repr__(self) -> str:
        qualifier = "" if self.exhaustive else "≥"
        return f"CountReport[{qualifier}{self.count}]"


def count_missing_answers(query: Any, database: Instance,
                          master: Instance,
                          constraints: Sequence[ContainmentConstraint],
                          *, limit: int | None = None,
                          check_partially_closed: bool = True,
                          budget: int | None = None,
                          governor: ExecutionGovernor | None = None,
                          on_exhausted: str = "partial",
                          use_engine: bool = True,
                          context: EvaluationContext | None = None,
                          backend: str | None = None,
                          workers: int | None = 1) -> CountReport:
    """How many answers could the query still gain?

    Definitionally ``count_missing_answers(...).count ==
    len(missing_answers_report(...).answers)`` (the property suite pins
    this), with the same governance, backend- and worker-invariance;
    *limit* truncates the count at that many distinct answers.
    """
    report = missing_answers_report(
        query, database, master, constraints, limit=limit,
        check_partially_closed=check_partially_closed, budget=budget,
        governor=governor, on_exhausted=on_exhausted,
        use_engine=use_engine, context=context, backend=backend,
        workers=workers)
    return CountReport(count=len(report.answers),
                       exhaustive=report.exhaustive,
                       statistics=report.statistics,
                       interrupted=report.interrupted)


@traced("count_completing_extensions")
def count_completing_extensions(
        query: Any, database: Instance, master: Instance,
        constraints: Sequence[ContainmentConstraint],
        *, max_extensions: int | None = None,
        check_partially_closed: bool = True,
        budget: int | None = None,
        governor: ExecutionGovernor | None = None,
        on_exhausted: str = "partial",
        use_engine: bool = True,
        context: EvaluationContext | None = None,
        backend: str | None = None) -> CountReport:
    """Count the distinct completing extensions of ``D``.

    A completing extension is a set of fresh facts ``Δ = μ(T_i) ∖ D``
    for some valid valuation ``μ`` of a disjunct tableau ``T_i`` such
    that ``(D ∪ Δ, Dm) ⊨ V`` and ``μ(u_i) ∉ Q(D)`` — exactly the
    witnesses the RCDP decider searches, so ``count == 0`` iff
    :func:`~repro.core.rcdp.decide_rcdp` returns COMPLETE.  Extensions
    are deduplicated by their fresh-fact set: two valuations that add
    the same facts count once, even when they expose different new
    answers.

    *max_extensions* truncates the count (``exhaustive=False``); the
    governor interrupts at valuation boundaries like the deciders.
    """
    validate_exhaustion_mode(on_exhausted)
    governor = resolve_governor(governor, budget)
    obs = obs_of(governor)
    context = resolve_context(context, use_engine, backend)
    engine_base = (context.statistics.copy() if context is not None
                   else None)
    assert_decidable_configuration(query, constraints)
    query.validate(database.schema)
    if check_partially_closed:
        with obs_span(obs, "check_ccs"):
            ensure_partially_closed(database, master, constraints, context)

    with obs_span(obs, "compile_plans"):
        tableaux = [Tableau(d, database.schema)
                    for d in query.to_cq_disjuncts()]
        adom = ActiveDomain.build(
            instances=(database, master),
            queries=[query] + [c.query for c in constraints],
            tableaux=[t for t in tableaux if t.satisfiable])
    with obs_span(obs, "evaluate_Q"):
        answers = (context.evaluate(query, database)
                   if context is not None else query.evaluate(database))

    row_filter, other_constraints = split_ind_constraints(
        constraints, master, context=context)

    extensions: set[frozenset] = set()
    examined = 0
    constraint_checks = 0

    def _stats() -> SearchStatistics:
        stats = SearchStatistics(valuations_examined=examined,
                                 constraint_checks=constraint_checks)
        if context is not None:
            stats = stats.merged(context.statistics.since(engine_base))
        return stats

    governed = (context.governed(governor) if context is not None
                else nullcontext())
    try:
        with governed, obs_span(obs, "enumerate_valuations"):
            for tableau in tableaux:
                if not tableau.satisfiable:
                    continue
                for valuation in iter_valid_valuations(
                        tableau, adom, fresh="own", row_filter=row_filter):
                    if governor is not None:
                        governor.tick("valuations")
                    examined += 1
                    summary = tableau.summary_under(valuation)
                    if summary in answers:
                        continue
                    delta = tableau.instantiate(valuation)
                    # A valuation landing entirely inside D would have
                    # summary ∈ Q(D); surviving deltas add ≥ 1 fact.
                    fresh = frozenset(
                        (name, row) for name, row in delta
                        if row not in database.relation(name))
                    if fresh in extensions:
                        continue
                    if other_constraints:
                        constraint_checks += 1
                        if context is not None:
                            if not satisfies_all_extension(
                                    database, delta, master,
                                    other_constraints, context=context):
                                continue
                        else:
                            candidate = extend_unvalidated(database, delta)
                            if not satisfies_all(candidate, master,
                                                 other_constraints):
                                continue
                    extensions.add(fresh)
                    if (max_extensions is not None
                            and len(extensions) >= max_extensions):
                        return CountReport(count=len(extensions),
                                           exhaustive=False,
                                           statistics=_stats())
    except ExecutionInterrupted as interrupt:
        report = CountReport(count=len(extensions), exhaustive=False,
                             statistics=_stats(),
                             interrupted=interrupt.reason)
        if on_exhausted == "error":
            interrupt.statistics = report.statistics
            interrupt.partial_result = report
            raise
        return report
    return CountReport(count=len(extensions), exhaustive=True,
                       statistics=_stats())
