"""v-tables, c-tables, and incomplete databases with possible worlds.

* a **v-table** is a relation whose fields may hold marked nulls;
* a **c-table** additionally attaches a local condition to each row;
* an :class:`IncompleteDatabase` maps relation names to c-tables (a
  v-table is a c-table whose conditions are all ⊤).

The semantics is the set of *possible worlds*: one complete instance per
valuation of the nulls over a value domain (here an explicit finite set —
honest enumeration rather than symbolic manipulation; the symbolic
algorithms belong to the companion paper, see the subpackage docstring).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import ReproError, SchemaError
from repro.incomplete.conditions import Condition, TRUE_CONDITION
from repro.incomplete.nulls import MarkedNull, is_null, nulls_in_row
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema

__all__ = ["ConditionalRow", "IncompleteDatabase"]

Valuation = Mapping[MarkedNull, Any]


@dataclass(frozen=True)
class ConditionalRow:
    """One c-table row: a tuple (possibly with nulls) plus a condition."""

    row: tuple
    condition: Condition = TRUE_CONDITION

    def nulls(self) -> set[MarkedNull]:
        return nulls_in_row(self.row) | self.condition.nulls()

    def instantiate(self, valuation: Valuation) -> tuple | None:
        """The concrete tuple in the world given by *valuation*, or None
        when the condition fails."""
        if not self.condition.holds(valuation):
            return None
        return tuple(
            valuation[value] if is_null(value) else value
            for value in self.row)

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.row)
        if self.condition.is_trivially_true:
            return f"({inner})"
        return f"({inner}) if {self.condition!r}"


class IncompleteDatabase:
    """A database whose relations are c-tables.

    Construct with a mapping ``relation name → iterable of rows``; each
    row may be a plain tuple (condition ⊤) or a :class:`ConditionalRow`.
    """

    __slots__ = ("schema", "_tables")

    def __init__(self, schema: DatabaseSchema,
                 contents: Mapping[str, Iterable[Any]] | None = None,
                 ) -> None:
        self.schema = schema
        tables: dict[str, tuple[ConditionalRow, ...]] = {
            name: () for name in schema.relation_names}
        for name, rows in (contents or {}).items():
            relation = schema.relation(name)
            frozen = []
            for row in rows:
                if not isinstance(row, ConditionalRow):
                    row = ConditionalRow(tuple(row))
                if len(row.row) != relation.arity:
                    raise SchemaError(
                        f"row {row!r} has arity {len(row.row)}, relation "
                        f"{name!r} has arity {relation.arity}")
                frozen.append(row)
            tables[name] = tuple(frozen)
        self._tables = tables

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def rows(self, name: str) -> tuple[ConditionalRow, ...]:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no relation {name!r}") from None

    def nulls(self) -> set[MarkedNull]:
        """All marked nulls occurring anywhere."""
        result: set[MarkedNull] = set()
        for rows in self._tables.values():
            for row in rows:
                result |= row.nulls()
        return result

    def is_complete(self) -> bool:
        """True when no nulls occur (a single possible world)."""
        return not self.nulls()

    def known_constants(self) -> frozenset[Any]:
        """The non-null constants occurring in the tables."""
        values: set[Any] = set()
        for rows in self._tables.values():
            for row in rows:
                values.update(v for v in row.row if not is_null(v))
        return frozenset(values)

    # ------------------------------------------------------------------
    # Possible worlds
    # ------------------------------------------------------------------

    def world(self, valuation: Valuation) -> Instance:
        """The complete instance under *valuation* of the nulls."""
        contents: dict[str, set[tuple]] = {}
        for name, rows in self._tables.items():
            concrete = set()
            for row in rows:
                instantiated = row.instantiate(valuation)
                if instantiated is not None:
                    concrete.add(instantiated)
            contents[name] = concrete
        return Instance(self.schema, contents, validate=False)

    def possible_worlds(self, domain: Sequence[Any],
                        limit: int | None = None) -> Iterator[Instance]:
        """Enumerate the worlds over valuations of the nulls into
        *domain*.

        The number of worlds is ``|domain| ^ #nulls``; *limit* caps the
        enumeration (raising :class:`ReproError` if exceeded) to protect
        callers from accidental blow-ups.
        """
        nulls = sorted(self.nulls(), key=lambda n: n.name)
        if not domain and nulls:
            raise ReproError("empty domain but the database has nulls")
        count = 0
        for values in itertools.product(domain, repeat=len(nulls)):
            count += 1
            if limit is not None and count > limit:
                raise ReproError(
                    f"possible-world enumeration exceeded limit {limit}")
            yield self.world(dict(zip(nulls, values)))

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------

    def certain_answers(self, query: Any, domain: Sequence[Any],
                        limit: int | None = None) -> frozenset[tuple]:
        """Tuples in ``Q(world)`` for *every* possible world."""
        answers: frozenset[tuple] | None = None
        for world in self.possible_worlds(domain, limit=limit):
            world_answers = query.evaluate(world)
            answers = (world_answers if answers is None
                       else answers & world_answers)
            if not answers:
                return frozenset()
        return answers if answers is not None else frozenset()

    def possible_answers(self, query: Any, domain: Sequence[Any],
                         limit: int | None = None) -> frozenset[tuple]:
        """Tuples in ``Q(world)`` for *some* possible world."""
        answers: set[tuple] = set()
        for world in self.possible_worlds(domain, limit=limit):
            answers |= query.evaluate(world)
        return frozenset(answers)

    def __repr__(self) -> str:
        parts = []
        for name, rows in self._tables.items():
            if rows:
                inner = ", ".join(repr(r) for r in rows)
                parts.append(f"{name}={{{inner}}}")
        return f"IncompleteDatabase[{'; '.join(parts) or '∅'}]"
