"""Missing values: v-tables, c-tables, and possible-world completeness.

Implements the Section 5 extension the paper defers to representation
systems (and the companion PODS 2010 paper develops), in honest
enumerative form: possible worlds over an explicit null domain, certain
and possible answers, and relative completeness across worlds.
"""

from repro.incomplete.completeness import (IncompleteRCDPReport,
                                           WorldVerdict,
                                           decide_rcdp_with_missing_values)
from repro.incomplete.conditions import (Condition, EqCondition,
                                         NeqCondition, TRUE_CONDITION,
                                         conjunction)
from repro.incomplete.counting import (CountReport, count_missing_answers,
                                       count_completing_extensions)
from repro.incomplete.nulls import MarkedNull, is_null, nulls_in_row
from repro.incomplete.tables import ConditionalRow, IncompleteDatabase

__all__ = [
    "Condition",
    "ConditionalRow",
    "CountReport",
    "EqCondition",
    "IncompleteDatabase",
    "IncompleteRCDPReport",
    "MarkedNull",
    "NeqCondition",
    "TRUE_CONDITION",
    "WorldVerdict",
    "conjunction",
    "count_completing_extensions",
    "count_missing_answers",
    "decide_rcdp_with_missing_values",
    "is_null",
    "nulls_in_row",
]
