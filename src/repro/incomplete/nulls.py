"""Marked (labeled) nulls for representation systems.

Section 5 of the paper defers *missing values* to representation systems
for possible worlds (v-tables / c-tables, Imieliński & Lipski 1984; Grahne
1991), which the companion paper (Fan & Geerts, "Capturing missing tuples
and missing values", PODS 2010) develops.  This subpackage implements the
classic machinery so the completeness analyses extend to databases with
missing values.

A :class:`MarkedNull` is a named unknown ``⊥name``; the same null may occur
in several fields, and every occurrence denotes the same (unknown) value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["MarkedNull", "is_null", "nulls_in_row"]


@dataclass(frozen=True, slots=True)
class MarkedNull:
    """A named unknown value.  Equality is by name."""

    name: str

    def __repr__(self) -> str:
        return f"⊥{self.name}"


def is_null(value: Any) -> bool:
    """True when *value* is a marked null."""
    return isinstance(value, MarkedNull)


def nulls_in_row(row: tuple) -> set[MarkedNull]:
    """The marked nulls occurring in *row*."""
    return {value for value in row if isinstance(value, MarkedNull)}
