"""Local conditions for c-tables.

A condition is a conjunction of (in)equalities over marked nulls and
constants, attached to a c-table row; the row is present in a possible
world exactly when the valuation of the nulls satisfies the condition
(Imieliński & Lipski 1984).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import ReproError
from repro.incomplete.nulls import MarkedNull, is_null

__all__ = ["EqCondition", "NeqCondition", "Condition", "TRUE_CONDITION",
           "conjunction"]


def _resolve(term: Any, valuation: Mapping[MarkedNull, Any]) -> Any:
    if is_null(term):
        try:
            return valuation[term]
        except KeyError:
            raise ReproError(
                f"valuation does not cover null {term!r}") from None
    return term


@dataclass(frozen=True, slots=True)
class EqCondition:
    """``left = right`` where either side is a null or a constant."""

    left: Any
    right: Any

    def holds(self, valuation: Mapping[MarkedNull, Any]) -> bool:
        return _resolve(self.left, valuation) == \
            _resolve(self.right, valuation)

    def nulls(self) -> set[MarkedNull]:
        return {t for t in (self.left, self.right) if is_null(t)}

    def __repr__(self) -> str:
        return f"{self.left!r} = {self.right!r}"


@dataclass(frozen=True, slots=True)
class NeqCondition:
    """``left ≠ right``."""

    left: Any
    right: Any

    def holds(self, valuation: Mapping[MarkedNull, Any]) -> bool:
        return _resolve(self.left, valuation) != \
            _resolve(self.right, valuation)

    def nulls(self) -> set[MarkedNull]:
        return {t for t in (self.left, self.right) if is_null(t)}

    def __repr__(self) -> str:
        return f"{self.left!r} ≠ {self.right!r}"


@dataclass(frozen=True)
class Condition:
    """A conjunction of atomic conditions (empty = true)."""

    atoms: tuple = ()

    def __init__(self, atoms: Iterable[Any] = ()) -> None:
        frozen = tuple(atoms)
        for atom in frozen:
            if not isinstance(atom, (EqCondition, NeqCondition)):
                raise ReproError(
                    f"unsupported condition atom {atom!r}")
        object.__setattr__(self, "atoms", frozen)

    def holds(self, valuation: Mapping[MarkedNull, Any]) -> bool:
        return all(atom.holds(valuation) for atom in self.atoms)

    def nulls(self) -> set[MarkedNull]:
        result: set[MarkedNull] = set()
        for atom in self.atoms:
            result |= atom.nulls()
        return result

    @property
    def is_trivially_true(self) -> bool:
        return not self.atoms

    def __repr__(self) -> str:
        if not self.atoms:
            return "⊤"
        return " ∧ ".join(repr(a) for a in self.atoms)


#: The always-true condition.
TRUE_CONDITION = Condition()


def conjunction(*atoms: Any) -> Condition:
    """Shorthand constructor."""
    return Condition(atoms)
