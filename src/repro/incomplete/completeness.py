"""Relative completeness for databases with missing values.

Section 5 of the paper: "One issue is about how to incorporate missing
values, together with missing tuples, into the framework … by capitalizing
on representation systems for possible worlds."  The companion paper
(Fan & Geerts, PODS 2010) develops the exact theory; this module provides
the *enumerative* semantics over an explicit null domain, which is exact
whenever the caller supplies the relevant value domain:

A c-table ``T`` is **complete for Q relative to (Dm, V)** under the
possible-worlds reading used here iff every possible world of ``T`` that is
partially closed w.r.t. ``(Dm, V)`` is relatively complete in the paper's
original (missing-tuples) sense.  Worlds that violate ``V`` are not
legitimate databases and are skipped (and reported).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.constraints.containment import (ContainmentConstraint,
                                           satisfies_all)
from repro.core.rcdp import decide_rcdp
from repro.core.results import RCDPResult, RCDPStatus
from repro.errors import ReproError
from repro.incomplete.tables import IncompleteDatabase
from repro.relational.instance import Instance

__all__ = ["WorldVerdict", "IncompleteRCDPReport",
           "decide_rcdp_with_missing_values"]


@dataclass(frozen=True)
class WorldVerdict:
    """Outcome for one possible world."""

    world: Instance
    partially_closed: bool
    verdict: RCDPResult | None  # None when not partially closed


@dataclass(frozen=True)
class IncompleteRCDPReport:
    """Aggregate over all possible worlds of a c-table database."""

    worlds_total: int
    worlds_partially_closed: int
    worlds_complete: int
    samples: tuple[WorldVerdict, ...]

    @property
    def certainly_complete(self) -> bool:
        """Every legitimate (partially closed) world is complete — the
        answer to Q can be trusted regardless of the unknown values."""
        return (self.worlds_partially_closed > 0
                and self.worlds_complete == self.worlds_partially_closed)

    @property
    def possibly_complete(self) -> bool:
        """At least one legitimate world is complete."""
        return self.worlds_complete > 0

    def __repr__(self) -> str:
        return (f"IncompleteRCDPReport[{self.worlds_complete}/"
                f"{self.worlds_partially_closed} legitimate world(s) "
                f"complete, {self.worlds_total} total]")


def decide_rcdp_with_missing_values(
        query: Any, database: IncompleteDatabase, master: Instance,
        constraints: Sequence[ContainmentConstraint],
        domain: Sequence[Any],
        *, world_limit: int = 4096,
        keep_samples: int = 4) -> IncompleteRCDPReport:
    """Assess relative completeness across the possible worlds of a
    c-table database.

    Parameters
    ----------
    domain:
        Values the marked nulls may take.  With ``k`` nulls the procedure
        examines ``|domain|^k`` worlds; *world_limit* bounds that count.
    keep_samples:
        How many per-world verdicts to retain in the report (the first
        few, for explanation purposes).

    Returns an :class:`IncompleteRCDPReport`; its
    :attr:`~IncompleteRCDPReport.certainly_complete` /
    :attr:`~IncompleteRCDPReport.possibly_complete` flags are the certain/
    possible readings of completeness under missing values.
    """
    total = 0
    closed = 0
    complete = 0
    samples: list[WorldVerdict] = []
    for world in database.possible_worlds(domain, limit=world_limit):
        total += 1
        if not satisfies_all(world, master, constraints):
            if len(samples) < keep_samples:
                samples.append(WorldVerdict(
                    world=world, partially_closed=False, verdict=None))
            continue
        closed += 1
        verdict = decide_rcdp(query, world, master, constraints,
                              check_partially_closed=False)
        if verdict.status is RCDPStatus.COMPLETE:
            complete += 1
        if len(samples) < keep_samples:
            samples.append(WorldVerdict(
                world=world, partially_closed=True, verdict=verdict))
    if total == 0:
        raise ReproError("no possible worlds (empty domain with nulls?)")
    return IncompleteRCDPReport(
        worlds_total=total, worlds_partially_closed=closed,
        worlds_complete=complete, samples=tuple(samples))
