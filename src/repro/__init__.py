"""repro — relative information completeness for partially closed databases.

A from-scratch reproduction of *Relative Information Completeness*
(Wenfei Fan and Floris Geerts, PODS 2009 / ACM TODS 35(4), 2010).

The library models databases that are *partially closed* with respect to
master data ``Dm`` through containment constraints ``V`` (``q(D) ⊆ p(Dm)``),
and decides:

* **RCDP** — is a given database ``D`` complete for a query ``Q`` relative
  to ``(Dm, V)``?  (:func:`repro.core.decide_rcdp`)
* **RCQP** — does *any* relatively complete database exist for ``Q``?
  (:func:`repro.core.decide_rcqp`)

Quick example::

    from repro import (Attribute, DatabaseSchema, Instance, RelationSchema,
                       decide_rcdp, cq, rel, var, InclusionDependency)

    schema = DatabaseSchema([RelationSchema("Supt", ["eid", "dept", "cid"])])
    master_schema = DatabaseSchema([RelationSchema("DCust", ["cid"])])
    dm = Instance(master_schema, {"DCust": {("c1",), ("c2",)}})
    d = Instance(schema, {"Supt": {("e0", "sales", "c1"),
                                   ("e0", "sales", "c2")}})
    v = [InclusionDependency("Supt", ["cid"], "DCust", ["cid"])
         .to_containment_constraint(schema, master_schema)]
    q = cq([var("c")], [rel("Supt", "e0", var("d"), var("c"))])
    result = decide_rcdp(q, d, dm, v)
    assert result.status.value == "complete"

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the reproduction of the paper's complexity tables.
"""

from repro.analysis import (AnalysisFacts, Diagnostic, Fixit, Report,
                            Severity, Span, analyze, lint_bundle,
                            lint_path, validate_for_decision)
from repro.constraints import (ConditionalFunctionalDependency,
                               ConditionalInclusionDependency,
                               ContainmentConstraint, DenialConstraint,
                               FunctionalDependency, InclusionDependency,
                               Projection, compile_all,
                               compile_to_containment, satisfies_all,
                               violated_constraints)
from repro.core import (ActiveDomain, CompletionOutcome,
                        IncompletenessCertificate, MissingAnswersReport,
                        RCDPResult, RCDPStatus, RCQPResult, RCQPStatus,
                        SearchStatistics, brute_force_rcdp,
                        brute_force_rcqp, decide_rcdp, decide_rcqp,
                        decide_rcqp_with_inds, enumerate_missing_answers,
                        make_complete, minimize_witness,
                        missing_answers_report)
from repro.engine import EvaluationContext
from repro.errors import (AnalysisError, ConstraintError, DomainError,
                          EvaluationError,
                          ExecutionInterrupted, NotPartiallyClosedError,
                          ParseError, QueryError, ReproError, SchemaError,
                          SearchBudgetExceededError,
                          UndecidableConfigurationError,
                          UnsatisfiableQueryError, WorkerPoolError)
from repro.runtime import (Budget, CancellationToken, Deadline,
                           ExecutionGovernor, FaultInjector, RetryPolicy,
                           SearchCheckpoint)
from repro.queries import (ConjunctiveQuery, Const, DatalogQuery, EFOQuery,
                           Eq, FOQuery, Neq, RelAtom, Rule, Tableau,
                           UnionOfConjunctiveQueries, Var, cq, eq, neq,
                           rel, rule, ucq, var)
from repro.relational import (Attribute, BOOLEAN, DatabaseSchema,
                              FiniteDomain, FreshValue, INFINITE, Instance,
                              RelationSchema)

__version__ = "1.0.0"

__all__ = [
    "ActiveDomain", "AnalysisError", "AnalysisFacts", "Attribute",
    "BOOLEAN", "Budget", "CancellationToken",
    "CompletionOutcome", "ConditionalFunctionalDependency",
    "ConditionalInclusionDependency", "ConjunctiveQuery", "Const",
    "ConstraintError", "ContainmentConstraint", "DatabaseSchema",
    "DatalogQuery", "Deadline", "DenialConstraint", "Diagnostic",
    "DomainError",
    "EFOQuery", "Eq", "EvaluationContext", "EvaluationError",
    "ExecutionGovernor",
    "ExecutionInterrupted", "FOQuery", "FaultInjector", "FiniteDomain",
    "Fixit", "FreshValue", "FunctionalDependency", "INFINITE",
    "InclusionDependency", "IncompletenessCertificate", "Instance",
    "MissingAnswersReport", "Neq", "NotPartiallyClosedError", "ParseError",
    "Projection", "QueryError", "RCDPResult", "RCDPStatus", "RCQPResult",
    "RCQPStatus", "RelAtom", "RelationSchema", "Report", "ReproError",
    "RetryPolicy", "Rule",
    "SchemaError", "SearchBudgetExceededError", "SearchCheckpoint",
    "SearchStatistics", "Severity", "Span", "Tableau",
    "UndecidableConfigurationError",
    "UnionOfConjunctiveQueries", "UnsatisfiableQueryError", "Var",
    "WorkerPoolError",
    "analyze",
    "brute_force_rcdp", "brute_force_rcqp", "compile_all",
    "compile_to_containment", "cq", "decide_rcdp", "decide_rcqp",
    "decide_rcqp_with_inds", "eq", "enumerate_missing_answers",
    "lint_bundle", "lint_path",
    "make_complete", "minimize_witness", "missing_answers_report", "neq",
    "rel", "rule", "satisfies_all", "ucq", "var",
    "validate_for_decision", "violated_constraints",
]
