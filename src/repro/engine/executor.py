"""Plan execution: indexed backtracking join over pluggable row sources.

The executor walks a :class:`~repro.engine.plan.CompiledPlan` step by
step.  For each step it resolves the key (constants and already-bound
variables), asks the step's :class:`RowSource` for the matching rows,
binds the step's output variables, verifies intra-atom repeats and any
comparison that just became decidable, and recurses.

Row sources are what make the same executor serve both evaluation modes:

* **full evaluation** gives every step an :class:`IndexedSource` over
  the instance's hash indexes;
* **semi-naive delta evaluation** pins one atom ``j`` to the Δ-facts
  (:class:`DeltaSource`), steps whose original body position is below
  ``j`` to the base instance only, and the rest to base ∪ Δ
  (:class:`ChainSource`) — exactly the partition that makes each new
  answer of ``Q(D ∪ Δ)`` counted once (see ``docs/ENGINE.md``).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.engine.indexes import InstanceIndexes
from repro.engine.plan import CompiledPlan, PlanStep
from repro.queries.terms import Const, Var

__all__ = ["IndexedSource", "DeltaSource", "ChainSource",
           "iter_rows", "evaluate_plan", "plan_holds"]

Binding = dict[Var, Any]


class IndexedSource:
    """Rows from one instance, via its hash indexes."""

    __slots__ = ("indexes",)

    def __init__(self, indexes: InstanceIndexes) -> None:
        self.indexes = indexes

    def rows(self, step: PlanStep, key: tuple) -> list[tuple]:
        return self.indexes.lookup(step.relation, step.key_positions, key)


class DeltaSource:
    """Rows from a small literal Δ-set; probed by linear scan.

    Δ is tiny by design (typically a handful of candidate facts), so
    building hash indexes over it would cost more than scanning it.
    """

    __slots__ = ("rows_by_relation",)

    def __init__(self, rows_by_relation: dict[str, list[tuple]]) -> None:
        self.rows_by_relation = rows_by_relation

    def rows(self, step: PlanStep, key: tuple) -> list[tuple]:
        candidates = self.rows_by_relation.get(step.relation)
        if not candidates:
            return []
        positions = step.key_positions
        return [row for row in candidates
                if tuple(row[p] for p in positions) == key]


class ChainSource:
    """Union of two sources (base ∪ Δ); sources are disjoint by
    construction because Δ is pre-filtered against the base."""

    __slots__ = ("first", "second")

    def __init__(self, first: Any, second: Any) -> None:
        self.first = first
        self.second = second

    def rows(self, step: PlanStep, key: tuple) -> list[tuple]:
        base = self.first.rows(step, key)
        extra = self.second.rows(step, key)
        if not extra:
            return base
        return base + extra


def _resolve_key(step: PlanStep, binding: Binding) -> tuple:
    return tuple(term.value if isinstance(term, Const) else binding[term]
                 for term in step.key_terms)


def _comparisons_hold(step: PlanStep, binding: Binding) -> bool:
    for comparison in step.comparisons:
        left = (comparison.left.value
                if isinstance(comparison.left, Const)
                else binding[comparison.left])
        right = (comparison.right.value
                 if isinstance(comparison.right, Const)
                 else binding[comparison.right])
        if not comparison.holds(left, right):
            return False
    return True


def iter_rows(plan: CompiledPlan, sources: tuple[Any, ...],
              binding: Binding | None = None) -> Iterator[tuple]:
    """Yield the head row of every satisfying binding (with duplicates;
    callers build sets).  *sources* supplies rows per step, parallel to
    ``plan.steps``."""
    if not plan.satisfiable:
        return
    if binding is None:
        binding = {}
    yield from _search(plan, sources, 0, binding)


def _search(plan: CompiledPlan, sources: tuple[Any, ...],
            depth: int, binding: Binding) -> Iterator[tuple]:
    if depth == len(plan.steps):
        yield tuple(term.value if isinstance(term, Const)
                    else binding[term] for term in plan.head)
        return
    step = plan.steps[depth]
    key = _resolve_key(step, binding)
    for row in sources[depth].rows(step, key):
        ok = True
        for position, variable in step.outputs:
            binding[variable] = row[position]
        for position, variable in step.intra_checks:
            if row[position] != binding[variable]:
                ok = False
                break
        if ok and _comparisons_hold(step, binding):
            yield from _search(plan, sources, depth + 1, binding)
        for _, variable in step.outputs:
            del binding[variable]


def evaluate_plan(plan: CompiledPlan,
                  sources: tuple[Any, ...]) -> frozenset[tuple]:
    """All head rows of *plan* over *sources* (set semantics)."""
    return frozenset(iter_rows(plan, sources))


def plan_holds(plan: CompiledPlan, sources: tuple[Any, ...]) -> bool:
    """True when the plan has at least one satisfying binding."""
    for _ in iter_rows(plan, sources):
        return True
    return False
