"""The :class:`EvaluationContext`: shared caches for one decision.

Every decision procedure in this library evaluates the same handful of
queries and constraints against the same master data and a stream of
candidate extensions.  The context is the object that makes that cheap:

* **compiled plans** per query body (and per pinned first atom, for
  delta plans) — compiled once, reused for every instance;
* **hash indexes** per instance, built lazily per ``(relation, bound
  positions)`` pair and charged to the attached governor;
* **answer memoization** ``Q(D)`` per ``(query, instance)`` pair;
* **master projections** ``p(Dm)`` per ``(projection, master)`` pair —
  previously recomputed on every single constraint check;
* **delta evaluation** ``Q(D ∪ Δ)`` from cached ``Q(D)`` via the
  semi-naive rule (at least one atom must match a new Δ-fact).

Instances cannot be weak-referenced (``__slots__`` without
``__weakref__``), so caches are keyed by ``id()`` with the instance
pinned in an LRU table; eviction purges every dependent cache entry, so
a recycled ``id()`` can never alias stale answers.

A context is optional everywhere: every public API works without one,
and creates no cross-call state when none is given.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.engine.executor import (ChainSource, DeltaSource, IndexedSource,
                                   iter_rows)
from repro.engine.indexes import InstanceIndexes
from repro.engine.plan import CompiledPlan, compile_plan
from repro.relational.backends import resolve_backend_name
from repro.relational.instance import Instance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import SearchStatistics
    from repro.relational.backends import StorageBackend
    from repro.runtime.governor import ExecutionGovernor

__all__ = ["EngineStatistics", "EvaluationContext", "ENGINE_LANGUAGES"]

#: Query languages the compiled/indexed/delta paths understand.  They are
#: exactly the monotone languages of the paper's decidable fragment —
#: monotonicity is what makes the semi-naive delta rule sound.  FO and FP
#: queries fall back to their own evaluators (still answer-cached).
ENGINE_LANGUAGES = frozenset({"CQ", "UCQ", "EFO"})

#: Facts are ``(relation name, row)`` pairs throughout the library.
Fact = tuple[str, tuple]


class EngineStatistics:
    """Mutable engine counters; snapshot with :meth:`copy`, diff with
    :meth:`since` to fold a decision's share into its result stats."""

    __slots__ = ("plans_compiled", "index_builds", "cache_hits",
                 "cache_misses", "delta_evaluations", "full_evaluations")

    def __init__(self) -> None:
        self.plans_compiled = 0
        self.index_builds = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.delta_evaluations = 0
        self.full_evaluations = 0

    def copy(self) -> "EngineStatistics":
        snapshot = EngineStatistics()
        for field in self.__slots__:
            setattr(snapshot, field, getattr(self, field))
        return snapshot

    def since(self, earlier: "EngineStatistics") -> "SearchStatistics":
        """The work done between *earlier* and now, as the immutable
        :class:`~repro.core.results.SearchStatistics` deciders report."""
        from repro.core.results import SearchStatistics

        return SearchStatistics(
            plans_compiled=self.plans_compiled - earlier.plans_compiled,
            index_builds=self.index_builds - earlier.index_builds,
            engine_cache_hits=self.cache_hits - earlier.cache_hits,
            delta_evaluations=(self.delta_evaluations
                               - earlier.delta_evaluations),
            full_evaluations=(self.full_evaluations
                              - earlier.full_evaluations))

    def __repr__(self) -> str:
        parts = ", ".join(f"{field}={getattr(self, field)}"
                          for field in self.__slots__)
        return f"EngineStatistics({parts})"


class EvaluationContext:
    """Shared evaluation state for one decision (or one audit session).

    ``governor`` is deliberately a plain mutable attribute: deciders
    attach their governor only around the search loop (via
    :meth:`governed`), so engine work during setup — baseline answers,
    master projections — is never charged, keeping the governor's tick
    accounting identical to the pre-engine code.

    ``backend`` selects the storage backend every evaluation routes
    through (:mod:`repro.relational.backends`): ``"python"`` keeps the
    original tuple-at-a-time executor and semi-naive delta rule;
    ``"columnar"`` and ``"sqlite"`` run set-at-a-time / pushed-down SQL
    plans with identical answers.  ``None`` resolves via the
    ``REPRO_BACKEND`` environment variable.
    """

    __slots__ = ("governor", "statistics", "max_cached_instances",
                 "backend", "_instances", "_indexes", "_answers",
                 "_projections", "_queries", "_plans", "_memo", "_pinned",
                 "_charged_indexes")

    def __init__(self, *, governor: "ExecutionGovernor | None" = None,
                 max_cached_instances: int = 256,
                 backend: str | None = None) -> None:
        self.governor = governor
        self.backend = resolve_backend_name(backend)
        self.statistics = EngineStatistics()
        self.max_cached_instances = max_cached_instances
        #: LRU of pinned instances: id -> Instance (insertion-ordered).
        self._instances: dict[int, Instance] = {}
        self._indexes: dict[int, InstanceIndexes] = {}
        #: per-instance answer cache: instance id -> {query id: answers}.
        self._answers: dict[int, dict[int, frozenset[tuple]]] = {}
        #: per-instance projection cache: instance id -> {p: p(Dm)}.
        self._projections: dict[int, dict[Any, frozenset[tuple]]] = {}
        #: queries pinned forever (there are few of them).
        self._queries: dict[int, Any] = {}
        self._plans: dict[tuple[int, int | None], CompiledPlan] = {}
        self._memo: dict[Any, Any] = {}
        self._pinned: dict[int, Any] = {}
        #: indexes already charged to this context, per instance id —
        #: storages are shared across contexts, so build accounting
        #: must be deduplicated here to stay run-deterministic.
        self._charged_indexes: dict[int, set[tuple[str, tuple]]] = {}

    # ------------------------------------------------------------------
    # Pinning and eviction
    # ------------------------------------------------------------------

    def _pin_instance(self, instance: Instance) -> int:
        """Pin *instance* in the LRU; return its ``id()`` cache key."""
        key = id(instance)
        if key in self._instances:
            # refresh LRU position
            self._instances[key] = self._instances.pop(key)
            return key
        self._instances[key] = instance
        if len(self._instances) > self.max_cached_instances:
            oldest = next(iter(self._instances))
            self._evict_instance(oldest)
        return key

    def _evict_instance(self, key: int) -> None:
        """Drop an instance and every cache entry derived from it, so a
        future object reusing the same ``id()`` cannot alias it."""
        self._instances.pop(key, None)
        self._indexes.pop(key, None)
        self._answers.pop(key, None)
        self._projections.pop(key, None)
        self._charged_indexes.pop(key, None)

    def _pin_query(self, query: Any) -> int:
        key = id(query)
        if key not in self._queries:
            self._queries[key] = query
        return key

    # ------------------------------------------------------------------
    # Plans and indexes
    # ------------------------------------------------------------------

    def plan_for(self, query: Any,
                 first_atom: int | None = None) -> CompiledPlan:
        """The compiled plan of a CQ *query* (cached per first-atom pin)."""
        key = (self._pin_query(query), first_atom)
        plan = self._plans.get(key)
        if plan is None:
            plan = compile_plan(query, first_atom)
            self._plans[key] = plan
            self.statistics.plans_compiled += 1
        return plan

    def indexes_for(self, instance: Instance) -> InstanceIndexes:
        """The (lazily populated) hash indexes of *instance*."""
        key = self._pin_instance(instance)
        indexes = self._indexes.get(key)
        if indexes is None:
            indexes = InstanceIndexes(instance, on_build=self._on_build)
            self._indexes[key] = indexes
        return indexes

    def storage_for(self, instance: Instance) -> "StorageBackend":
        """The instance's storage for this context's backend (pinned so
        the storage-holding instance survives the LRU)."""
        self._pin_instance(instance)
        return instance.storage(self.backend)

    def _on_build(self, relation: str, positions: tuple[int, ...]) -> None:
        if self.governor is not None:
            self.governor.tick("index_builds")
        self.statistics.index_builds += 1

    def _storage_on_build(self, instance: Instance) -> Callable:
        """An ``on_build`` callback for *instance*'s shared storage.

        Storages outlive contexts (they are cached on the instance), so
        they report every index a plan *requires*; this wrapper charges
        each ``(relation, positions)`` pair once per instance per
        context — exactly what a cold run would build — keeping the
        counters identical whether or not the storage is pre-warmed.
        """
        key = self._pin_instance(instance)
        charged = self._charged_indexes.setdefault(key, set())

        def on_build(relation: str, positions: tuple[int, ...]) -> None:
            index_key = (relation, positions)
            if index_key in charged:
                return
            charged.add(index_key)
            self._on_build(relation, positions)

        return on_build

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, query: Any, instance: Instance) -> frozenset[tuple]:
        """``Q(D)``, memoized per (query, instance) pair.

        CQ/UCQ/∃FO⁺ run on the compiled, indexed path; other languages
        (FO, FP — non-monotone, not plannable here) fall back to their
        own evaluators, still benefiting from the answer cache.
        """
        instance_key = self._pin_instance(instance)
        query_key = self._pin_query(query)
        per_instance = self._answers.setdefault(instance_key, {})
        cached = per_instance.get(query_key)
        if cached is not None:
            self.statistics.cache_hits += 1
            return cached
        self.statistics.cache_misses += 1
        if getattr(query, "language", None) in ENGINE_LANGUAGES:
            answers = self._engine_evaluate(query, instance)
        else:
            answers = query.evaluate(instance)
        self.statistics.full_evaluations += 1
        per_instance[query_key] = answers
        return answers

    def holds(self, query: Any, instance: Instance) -> bool:
        """``Q(D) ≠ ∅`` (Boolean queries: truth)."""
        return bool(self.evaluate(query, instance))

    def _engine_evaluate(self, query: Any,
                         instance: Instance) -> frozenset[tuple]:
        if self.backend != "python":
            storage = self.storage_for(instance)
            on_build = self._storage_on_build(instance)
            answers: set[tuple] = set()
            for disjunct in query.to_cq_disjuncts():
                answers.update(storage.plan_rows(
                    self.plan_for(disjunct), on_build=on_build))
            return frozenset(answers)
        source = IndexedSource(self.indexes_for(instance))
        answers = set()
        for disjunct in query.to_cq_disjuncts():
            plan = self.plan_for(disjunct)
            sources = (source,) * len(plan.steps)
            answers.update(iter_rows(plan, sources))
        return frozenset(answers)

    # ------------------------------------------------------------------
    # Delta evaluation
    # ------------------------------------------------------------------

    def evaluate_extension(self, query: Any, base: Instance,
                           delta_facts: Iterable[Fact]) -> frozenset[tuple]:
        """``Q(base ∪ Δ)`` without materializing the union.

        For the monotone engine languages this uses the semi-naive rule:
        every genuinely new answer has at least one atom matched by a new
        Δ-fact, so for each disjunct and each atom position ``j`` a delta
        plan is run in which atom ``j`` ranges over ``Δ \\ D`` only,
        atoms at earlier body positions over ``D`` only, and later ones
        over ``D ∪ Δ`` — partitioning the new bindings by their minimal
        Δ-atom so none is enumerated twice.  Non-monotone languages
        (FO, FP) materialize the union and evaluate it directly.
        """
        new_rows = self._new_rows(base, delta_facts)
        if getattr(query, "language", None) not in ENGINE_LANGUAGES:
            # Non-monotone fallback: materialize D ∪ Δ.  The union is
            # ephemeral (one per candidate), so it is not answer-cached.
            if not new_rows:
                return query.evaluate(base)
            from repro.relational.instance import extend_unvalidated

            delta = [(name, row) for name, rows in new_rows.items()
                     for row in rows]
            self.statistics.full_evaluations += 1
            return query.evaluate(extend_unvalidated(base, delta))
        base_answers = self.evaluate(query, base)
        if not new_rows:
            return base_answers
        if getattr(query, "arity", None) == 0 and base_answers:
            # Boolean query already true on the base; monotonicity keeps
            # it true under any extension.
            return base_answers
        self.statistics.delta_evaluations += 1
        if self.backend != "python":
            storage = self.storage_for(base)
            on_build = self._storage_on_build(base)
            answers = set(base_answers)
            for disjunct in query.to_cq_disjuncts():
                answers.update(storage.plan_rows_extended(
                    self.plan_for(disjunct), new_rows,
                    on_build=on_build))
            return frozenset(answers)
        base_source = IndexedSource(self.indexes_for(base))
        delta_source = DeltaSource(new_rows)
        chain_source = ChainSource(base_source, delta_source)
        answers = set(base_answers)
        for disjunct in query.to_cq_disjuncts():
            atoms = disjunct.relation_atoms
            for j, atom in enumerate(atoms):
                if atom.relation not in new_rows:
                    continue
                plan = self.plan_for(disjunct, first_atom=j)
                sources = tuple(
                    delta_source if step.atom_index == j
                    else base_source if step.atom_index < j
                    else chain_source
                    for step in plan.steps)
                answers.update(iter_rows(plan, sources))
        return frozenset(answers)

    @staticmethod
    def _new_rows(base: Instance, delta_facts: Iterable[Fact],
                  ) -> dict[str, list[tuple]]:
        """Δ-facts grouped by relation, minus rows already in *base*."""
        new_rows: dict[str, list[tuple]] = {}
        for name, row in delta_facts:
            row = tuple(row)
            if row not in base.relation(name):
                rows = new_rows.setdefault(name, [])
                if row not in rows:
                    rows.append(row)
        return new_rows

    def extension_satisfies(self, query: Any, base: Instance,
                            delta_facts: Iterable[Fact], projection: Any,
                            master: Instance) -> bool:
        """Whether ``Q(base ∪ Δ) ⊆ p(master)`` — the containment
        constraint check on a candidate extension.

        On the non-python backends this is the pushdown fast path: the
        storage decides *violation* directly (``plan_violates``), so an
        at-most-``k`` constraint (empty target) becomes a single
        existence probe that stops at the first answer instead of
        materializing ``Q(base ∪ Δ)``.  The python backend (and
        non-engine languages) keep the exact original evaluation, so
        verdicts and counters there are byte-identical to the
        pre-backend code.
        """
        if (self.backend != "python"
                and getattr(query, "language", None) in ENGINE_LANGUAGES):
            delta_facts = list(delta_facts)
            new_rows = self._new_rows(base, delta_facts)
            if new_rows:
                storage = self.storage_for(base)
                on_build = self._storage_on_build(base)
                allowed = (None if projection.is_empty_target
                           else self.projection_rows(projection, master))
                self.statistics.delta_evaluations += 1
                for disjunct in query.to_cq_disjuncts():
                    plan = self.plan_for(disjunct)
                    if storage.plan_violates(plan, new_rows, allowed,
                                             on_build=on_build):
                        return False
                return True
        answers = self.evaluate_extension(query, base, delta_facts)
        if not answers:
            return True
        if projection.is_empty_target:
            return False
        return answers <= self.projection_rows(projection, master)

    # ------------------------------------------------------------------
    # Master projections
    # ------------------------------------------------------------------

    def projection_rows(self, projection: Any,
                        master: Instance) -> frozenset[tuple]:
        """``p(Dm)``, memoized per (projection, master) pair."""
        key = self._pin_instance(master)
        per_master = self._projections.setdefault(key, {})
        rows = per_master.get(projection)
        if rows is None:
            self.statistics.cache_misses += 1
            rows = projection.evaluate(master)
            per_master[projection] = rows
        else:
            self.statistics.cache_hits += 1
        return rows

    # ------------------------------------------------------------------
    # Generic memoization and governor attachment
    # ------------------------------------------------------------------

    def memo(self, key: Any, factory: Callable[[], Any],
             pin: Iterable[Any] = ()) -> Any:
        """Get-or-compute an arbitrary decision-scoped value.

        Callers keying on ``id()`` of objects must pass those objects in
        *pin* so their ids stay stable for the context's lifetime (used
        by the deciders for tableaux, active domains, and value pools).
        """
        if key in self._memo:
            self.statistics.cache_hits += 1
            return self._memo[key]
        for obj in pin:
            self._pinned.setdefault(id(obj), obj)
        value = factory()
        self._memo[key] = value
        return value

    @contextmanager
    def governed(self, governor: "ExecutionGovernor | None"
                 ) -> Iterator["EvaluationContext"]:
        """Attach *governor* to the context for the duration of a search
        loop, restoring the previous one afterwards.  Index builds that
        happen inside the block tick the governor; engine work outside
        it (setup, baselines) stays uncharged."""
        previous = self.governor
        self.governor = governor
        try:
            yield self
        finally:
            self.governor = previous

    def __repr__(self) -> str:
        return (f"EvaluationContext[instances={len(self._instances)}, "
                f"plans={len(self._plans)}, {self.statistics!r}]")
