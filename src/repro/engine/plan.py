"""Compiled evaluation plans for conjunctive-query bodies.

A :class:`CompiledPlan` fixes, once per query, everything the backtracking
join of :meth:`~repro.queries.cq.ConjunctiveQuery.evaluate` used to redo on
every call: the greedy join order, which positions of each atom are *bound*
when the atom is reached (constants, or variables bound by earlier steps)
and which are *free*, and at which step each comparison becomes decidable.

The bound positions of a step are exactly the key of the hash index the
executor probes (:mod:`repro.engine.indexes`), turning the naive
full-relation rescan into a dictionary lookup.

Plans come in two flavors:

* the *full* plan (``first_atom=None``) orders atoms greedily by shared
  variables — the same heuristic the naive evaluator used;
* a *delta* plan (``first_atom=j``) forces atom ``j`` to be the first
  step, so that semi-naive evaluation can drive the join from the tiny
  set of Δ-facts matching that atom (:mod:`repro.engine.executor`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.queries.atoms import Eq, Neq
from repro.queries.cq import ConjunctiveQuery
from repro.queries.terms import Const, Term, Var

__all__ = ["PlanStep", "CompiledPlan", "compile_plan"]


@dataclass(frozen=True)
class PlanStep:
    """One atom of the join, annotated with its binding structure.

    Attributes
    ----------
    atom_index:
        Index of the atom in ``query.relation_atoms`` (the *original*
        body position — delta evaluation classifies steps by it).
    relation:
        Relation the step scans or probes.
    key_positions, key_terms:
        Positions whose value is known when the step runs (a constant,
        or a variable bound by an earlier step), and the terms supplying
        those values.  They form the hash-index key.
    outputs:
        ``(position, variable)`` pairs bound by this step — the first
        occurrence of each new variable.
    intra_checks:
        ``(position, variable)`` pairs where a variable introduced by
        this very step repeats; the row value must equal the binding.
    comparisons:
        ``Eq``/``Neq`` atoms whose variables are all bound once this
        step has run; checked eagerly to prune the search.
    """

    atom_index: int
    relation: str
    key_positions: tuple[int, ...]
    key_terms: tuple[Term, ...]
    outputs: tuple[tuple[int, Var], ...]
    intra_checks: tuple[tuple[int, Var], ...]
    comparisons: tuple[Any, ...]

    @property
    def is_scan(self) -> bool:
        """True when the step probes no index: every row is examined."""
        return not self.key_positions

    @property
    def constant_key_positions(self) -> tuple[int, ...]:
        """The key positions supplied by constants (always available)."""
        return tuple(position
                     for position, term in zip(self.key_positions,
                                               self.key_terms)
                     if isinstance(term, Const))


@dataclass(frozen=True)
class CompiledPlan:
    """An ordered join plan for one CQ body.

    ``satisfiable`` is False when a ground comparison fails at compile
    time (``1 ≠ 1``); such plans evaluate to the empty set without
    touching the instance.
    """

    query: ConjunctiveQuery
    steps: tuple[PlanStep, ...]
    head: tuple[Term, ...]
    satisfiable: bool

    @property
    def is_boolean(self) -> bool:
        return not self.head

    def scan_steps(self) -> tuple[PlanStep, ...]:
        """The steps that rescan their whole relation (no index key).

        The first step is a scan by construction unless the atom carries
        constants; later scans are cross products — the plan linter's
        RC401 (see :mod:`repro.analysis.planlint`)."""
        return tuple(step for step in self.steps if step.is_scan)

    def join_components(self) -> tuple[frozenset[int], ...]:
        """Connected components of the body's join graph (atom indices).

        Two atoms are connected when they share a variable; more than one
        component means some cross product is inherent in the body, not
        an artifact of the join order."""
        atoms = self.query.relation_atoms
        parent = list(range(len(atoms)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        by_variable: dict[Var, int] = {}
        for index, atom in enumerate(atoms):
            for variable in atom.variables():
                if variable in by_variable:
                    parent[find(index)] = find(by_variable[variable])
                else:
                    by_variable[variable] = index
        groups: dict[int, set[int]] = {}
        for index in range(len(atoms)):
            groups.setdefault(find(index), set()).add(index)
        return tuple(frozenset(g) for g in
                     sorted(groups.values(), key=min))


def _greedy_order(query: ConjunctiveQuery,
                  first_atom: int | None) -> list[int]:
    """Join order over atom indices: the atom sharing the most variables
    with those already bound goes next (ties: fewest total variables) —
    the heuristic previously buried in ``ConjunctiveQuery._ordered_atoms``,
    optionally seeded with a forced first atom."""
    atoms = query.relation_atoms
    remaining = list(range(len(atoms)))
    ordered: list[int] = []
    bound: set[Var] = set()
    if first_atom is not None:
        remaining.remove(first_atom)
        ordered.append(first_atom)
        bound |= atoms[first_atom].variables()
    while remaining:
        best = max(remaining,
                   key=lambda i, bound=bound: (
                       len(atoms[i].variables() & bound),
                       -len(atoms[i].variables())))
        ordered.append(best)
        remaining.remove(best)
        bound |= atoms[best].variables()
    return ordered


def compile_plan(query: ConjunctiveQuery,
                 first_atom: int | None = None) -> CompiledPlan:
    """Compile *query*'s body into an ordered, index-aware plan.

    *first_atom*, when given, pins that atom (by its position in
    ``query.relation_atoms``) as the first step — the hook semi-naive
    delta evaluation uses to drive the join from Δ.
    """
    satisfiable = True
    pending: list[Eq | Neq] = []
    for comparison in query.comparisons:
        if comparison.variables():
            pending.append(comparison)
        else:  # ground: decide now
            if not comparison.holds(comparison.left.value,
                                    comparison.right.value):
                satisfiable = False

    atoms = query.relation_atoms
    steps: list[PlanStep] = []
    bound: set[Var] = set()
    for atom_index in _greedy_order(query, first_atom):
        atom = atoms[atom_index]
        key_positions: list[int] = []
        key_terms: list[Term] = []
        outputs: list[tuple[int, Var]] = []
        intra_checks: list[tuple[int, Var]] = []
        new_here: set[Var] = set()
        for position, term in enumerate(atom.terms):
            if isinstance(term, Const) or (isinstance(term, Var)
                                           and term in bound):
                key_positions.append(position)
                key_terms.append(term)
            elif term in new_here:
                intra_checks.append((position, term))
            else:
                outputs.append((position, term))
                new_here.add(term)
        bound |= new_here
        decidable = [c for c in pending if c.variables() <= bound]
        pending = [c for c in pending if c.variables() - bound]
        steps.append(PlanStep(
            atom_index=atom_index,
            relation=atom.relation,
            key_positions=tuple(key_positions),
            key_terms=tuple(key_terms),
            outputs=tuple(outputs),
            intra_checks=tuple(intra_checks),
            comparisons=tuple(decidable)))
    # Safety guarantees every comparison variable occurs in some relation
    # atom, so nothing can remain pending after the last step.
    assert not pending, "unsafe query slipped past ConjunctiveQuery"
    return CompiledPlan(query=query, steps=tuple(steps),
                        head=query.head, satisfiable=satisfiable)
