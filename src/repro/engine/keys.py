"""Stable, picklable cache keys for decision-scoped memoization.

The :meth:`~repro.engine.context.EvaluationContext.memo` table was
historically keyed by ``id()`` tuples, with the keyed objects pinned in
the context so their ids could not be recycled.  That works within one
process but makes the keys meaningless anywhere else: a key built in the
parent is a different tuple in a worker even for byte-identical inputs,
so per-worker contexts silently miss every cache the parent warmed, and
keys cannot ride along in a pickled task description at all.

:func:`stable_key` replaces the id tuples with *content* tuples.  Every
object this library memoizes on — :class:`~repro.relational.instance.
Instance`, the query classes, :class:`~repro.constraints.containment.
ContainmentConstraint` — has a deterministic, content-complete ``repr``
(instances sort their relations and rows), so ``(qualname, repr)`` is a
stable fingerprint: equal content yields equal keys in every process,
and the keys are plain tuples of strings, hence picklable.  Two distinct
objects with identical content collapse onto one memo entry, which is
exactly the sharing the caches want.

Callers still pass the objects through ``pin=`` — pinning controls
*lifetime* for the id-keyed instance LRU (answers, indexes), which is a
separate concern from memo-key identity.
"""

from __future__ import annotations

from typing import Any

__all__ = ["stable_key", "decision_key"]


def stable_key(obj: Any) -> tuple[str, str]:
    """A content-based, picklable fingerprint of *obj*.

    Relies on the deterministic reprs of the library's value-like
    objects; suitable as a dict key and stable across processes.
    """
    return (type(obj).__qualname__, repr(obj))


def decision_key(tag: str, *objects: Any) -> tuple:
    """A memo key for one *tag*-named computation over *objects*."""
    return (tag, *(stable_key(obj) for obj in objects))
