"""The evaluation engine: compiled plans, hash-indexed joins, memoized
master projections, and semi-naive delta evaluation.

All query evaluation in the library routes through this package — either
explicitly via an :class:`EvaluationContext` threaded through a decision
procedure, or implicitly when ``query.evaluate(instance)`` is called
without one (each CQ then runs its compiled plan over per-call indexes).
The pre-engine backtracking evaluators survive as ``evaluate_naive`` on
every query class and serve as the cross-validation oracle in the
property tests (see ``docs/ENGINE.md``).

Execution is backend-pluggable: the context routes through the storage
backends of :mod:`repro.relational.backends` (tuple-at-a-time python
rows, set-at-a-time columnar, SQL pushdown via :mod:`repro.engine.sql`
— see ``docs/BACKENDS.md``).
"""

from repro.engine.context import (ENGINE_LANGUAGES, EngineStatistics,
                                  EvaluationContext)
from repro.engine.executor import (ChainSource, DeltaSource, IndexedSource,
                                   evaluate_plan, iter_rows, plan_holds)
from repro.engine.indexes import InstanceIndexes, build_index
from repro.engine.keys import decision_key, stable_key
from repro.engine.plan import CompiledPlan, PlanStep, compile_plan
from repro.engine.sql import LoweredPlan, lower_plan

__all__ = [
    "decision_key",
    "stable_key",
    "ENGINE_LANGUAGES",
    "EngineStatistics",
    "EvaluationContext",
    "ChainSource",
    "DeltaSource",
    "IndexedSource",
    "evaluate_plan",
    "iter_rows",
    "plan_holds",
    "InstanceIndexes",
    "build_index",
    "CompiledPlan",
    "PlanStep",
    "compile_plan",
    "LoweredPlan",
    "lower_plan",
]
