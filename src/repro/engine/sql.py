"""Lowering compiled CQ plans to single SQL statements (pushdown).

A :class:`~repro.engine.plan.CompiledPlan` is one conjunctive-query
disjunct with a fixed join order.  :func:`lower_plan` turns it into one
``SELECT`` over the per-relation tables of the SQLite backend — the
whole join, all equality/disequality conditions, and the head
projection run inside the database engine, so a candidate-extension
check costs one prepared-statement execution instead of a Python-level
backtracking search.

Lowering rules (see ``docs/BACKENDS.md``):

* every plan step ``i`` contributes ``FROM <table> AS s{i}``;
* a step's bound key positions become ``WHERE`` conjuncts — against a
  ``?`` parameter for constants, against the *defining column* of the
  variable (the ``s{j}.c{p}`` of its first occurrence) otherwise;
* intra-atom repeats and decidable ``Eq``/``Neq`` comparisons lower to
  ``=`` / ``<>`` conjuncts at the step where the executor would have
  checked them;
* head variables become ``SELECT DISTINCT`` columns (each variable
  once, however often it repeats in the head); a boolean or all-constant
  head selects nothing and callers probe with ``EXISTS``-style
  ``SELECT 1 … LIMIT 1``.

Constants stay *raw* in :attr:`LoweredPlan.params`: tables hold interned
codes, and only the storage owns the interner, so it encodes the
parameters at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.engine.plan import CompiledPlan
from repro.queries.atoms import Eq
from repro.queries.terms import Const, Var

__all__ = ["LoweredPlan", "lower_plan"]


@dataclass(frozen=True)
class LoweredPlan:
    """One plan lowered to SQL fragments.

    ``select_cols`` are the column references of the head's distinct
    variables, in first-occurrence order; ``head_pattern`` rebuilds a
    head row from a fetched result: ``("const", value)`` entries are
    emitted verbatim, ``("col", i)`` entries read the ``i``-th selected
    column (a code, to be decoded by the storage).  ``params`` are the
    raw constant values matching the ``?`` placeholders in ``where``.
    """

    from_clause: str
    where: tuple[str, ...]
    params: tuple[Any, ...]
    select_cols: tuple[str, ...]
    head_pattern: tuple[tuple[str, Any], ...]

    def sql_rows(self) -> str:
        """``SELECT DISTINCT`` of the head columns (or a bare existence
        probe when the head binds no variables)."""
        if not self.select_cols:
            return self.sql_exists()
        return (f"SELECT DISTINCT {', '.join(self.select_cols)} "
                f"{self._tail()}")

    def sql_exists(self, extra: str = "") -> str:
        """``SELECT 1 … LIMIT 1`` existence probe, optionally with an
        *extra* conjunct (the violation check's ``NOT IN`` filter)."""
        conjuncts = self.where + ((extra,) if extra else ())
        clause = self.from_clause
        if conjuncts:
            clause += " WHERE " + " AND ".join(conjuncts)
        return f"SELECT 1 {clause} LIMIT 1"

    def _tail(self) -> str:
        if self.where:
            return self.from_clause + " WHERE " + " AND ".join(self.where)
        return self.from_clause


def lower_plan(plan: CompiledPlan,
               table_of: Mapping[str, str]) -> LoweredPlan:
    """Lower *plan* to SQL over the tables named by *table_of*.

    The caller guarantees ``plan.satisfiable`` and at least one step
    (ground-false plans and atom-less queries never reach SQL).
    """
    tables = []
    where: list[str] = []
    params: list[Any] = []
    defining: dict[Var, str] = {}
    for i, step in enumerate(plan.steps):
        tables.append(f"{table_of[step.relation]} AS s{i}")
        for position, term in zip(step.key_positions, step.key_terms):
            column = f"s{i}.c{position}"
            if isinstance(term, Const):
                where.append(f"{column} = ?")
                params.append(term.value)
            else:
                where.append(f"{column} = {defining[term]}")
        for position, variable in step.outputs:
            defining[variable] = f"s{i}.c{position}"
        for position, variable in step.intra_checks:
            where.append(f"s{i}.c{position} = {defining[variable]}")
        for comparison in step.comparisons:
            op = "=" if isinstance(comparison, Eq) else "<>"
            left = _operand(comparison.left, defining, params)
            right = _operand(comparison.right, defining, params)
            where.append(f"{left} {op} {right}")

    select_cols: list[str] = []
    col_of_var: dict[Var, int] = {}
    head_pattern: list[tuple[str, Any]] = []
    for term in plan.head:
        if isinstance(term, Const):
            head_pattern.append(("const", term.value))
            continue
        index = col_of_var.get(term)
        if index is None:
            index = len(select_cols)
            col_of_var[term] = index
            select_cols.append(defining[term])
        head_pattern.append(("col", index))

    return LoweredPlan(
        from_clause="FROM " + ", ".join(tables),
        where=tuple(where),
        params=tuple(params),
        select_cols=tuple(select_cols),
        head_pattern=tuple(head_pattern))


def _operand(term: Any, defining: Mapping[Var, str],
             params: list[Any]) -> str:
    if isinstance(term, Const):
        params.append(term.value)
        return "?"
    return defining[term]
