"""Lazily built hash indexes over an immutable :class:`Instance`.

An :class:`InstanceIndexes` object caches, per ``(relation, positions)``
pair, a dictionary mapping the projection of each row onto *positions*
to the list of rows with that projection.  A plan step with bound
positions ``(0, 2)`` then finds its matching rows with one dictionary
lookup instead of scanning the whole relation — the core of the engine's
replacement for ``ConjunctiveQuery._search``.

Indexes are built on first use only (many plans never touch most
relations) and are safe to cache forever because instances are
immutable.  ``positions = ()`` degenerates to a single bucket holding
every row, so plan steps with no bound position go through the same code
path as keyed probes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.relational.instance import Instance

__all__ = ["InstanceIndexes", "build_index"]

#: Rows grouped by the values at the indexed positions.
Index = dict[tuple, list[tuple]]


def build_index(rows: Iterable[tuple],
                positions: tuple[int, ...]) -> Index:
    """Group *rows* by their projection onto *positions*."""
    index: Index = {}
    for row in rows:
        key = tuple(row[p] for p in positions)
        bucket = index.get(key)
        if bucket is None:
            index[key] = [row]
        else:
            bucket.append(row)
    return index


class InstanceIndexes:
    """All hash indexes for one instance, built on demand.

    *on_build* is invoked once per index actually constructed, before
    the build happens — the evaluation context uses it to charge the
    execution governor and count ``index_builds`` in the engine
    statistics.  Charging *before* building keeps the governor's
    tick-then-work contract, so an interrupt leaves no phantom index.
    """

    __slots__ = ("instance", "_indexes", "on_build")

    def __init__(self, instance: Instance,
                 on_build: Callable[[str, tuple[int, ...]], None]
                 | None = None) -> None:
        self.instance = instance
        self._indexes: dict[tuple[str, tuple[int, ...]], Index] = {}
        self.on_build = on_build

    def lookup(self, relation: str, positions: tuple[int, ...],
               key: tuple) -> list[tuple]:
        """Rows of *relation* whose projection onto *positions* is *key*."""
        index = self._indexes.get((relation, positions))
        if index is None:
            if self.on_build is not None:
                self.on_build(relation, positions)
            index = build_index(self.instance.relation(relation), positions)
            self._indexes[(relation, positions)] = index
        return index.get(key, _NO_ROWS)

    def __len__(self) -> int:
        return len(self._indexes)

    def __repr__(self) -> str:
        keys = ", ".join(f"{rel}{list(pos)}"
                         for rel, pos in sorted(self._indexes))
        return f"InstanceIndexes[{keys}]"


_NO_ROWS: list[Any] = []
