"""Quantified Boolean formulas with fixed prefixes (∀∃ and ∃∀∃).

The Πᵖ₂ lower bound of Theorem 3.6 reduces from ∀∗∃∗-3SAT and the Σᵖ₃
lower bound of Corollary 4.6 from ∃∗∀∗∃∗-3SAT.  These evaluators decide the
source instances by expansion over the outer blocks, delegating the
innermost existential block to DPLL — exactly the oracle hierarchy the
classes describe, and independent of the reduction code they validate.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError
from repro.obs import obs_of, obs_span
from repro.runtime import ExecutionGovernor
from repro.solvers.sat import CNF, dpll_satisfiable, random_3sat

__all__ = ["ForallExists3SAT", "ExistsForall3SAT", "ExistsForallExists3SAT",
           "random_forall_exists_3sat", "random_exists_forall_3sat",
           "random_exists_forall_exists_3sat"]


def _check_partition(cnf: CNF, *blocks: Sequence[int]) -> None:
    flat = [v for block in blocks for v in block]
    if sorted(flat) != cnf.variables:
        raise ReproError(
            f"quantifier blocks {blocks} do not partition the variables "
            f"1..{cnf.num_variables}")


@dataclass(frozen=True)
class ForallExists3SAT:
    """``∀X ∃Y. matrix`` with a 3CNF matrix."""

    universal: tuple[int, ...]
    existential: tuple[int, ...]
    matrix: CNF

    def __init__(self, universal: Sequence[int],
                 existential: Sequence[int], matrix: CNF) -> None:
        object.__setattr__(self, "universal", tuple(universal))
        object.__setattr__(self, "existential", tuple(existential))
        object.__setattr__(self, "matrix", matrix)
        _check_partition(matrix, self.universal, self.existential)

    def is_true(self, governor: ExecutionGovernor | None = None) -> bool:
        """Evaluate by expanding the ∀ block and calling DPLL per branch.

        A *governor* charges one ``"nodes"`` tick per ∀-branch (plus the
        inner DPLL's own node ticks) and interrupts cooperatively.
        """
        with obs_span(obs_of(governor), "solve_qbf", prefix="forall-exists"):
            for values in itertools.product((False, True),
                                            repeat=len(self.universal)):
                if governor is not None:
                    governor.tick("nodes")
                assumptions = dict(zip(self.universal, values))
                if dpll_satisfiable(self.matrix, assumptions,
                                    governor=governor) is None:
                    return False
            return True

    def __repr__(self) -> str:
        return (f"∀{list(self.universal)}∃{list(self.existential)}."
                f"{self.matrix!r}")


@dataclass(frozen=True)
class ExistsForall3SAT:
    """``∃X ∀Y. matrix`` with a 3CNF matrix (Σᵖ₂)."""

    existential: tuple[int, ...]
    universal: tuple[int, ...]
    matrix: CNF

    def __init__(self, existential: Sequence[int],
                 universal: Sequence[int], matrix: CNF) -> None:
        object.__setattr__(self, "existential", tuple(existential))
        object.__setattr__(self, "universal", tuple(universal))
        object.__setattr__(self, "matrix", matrix)
        _check_partition(matrix, self.existential, self.universal)

    def is_true(self, governor: ExecutionGovernor | None = None) -> bool:
        """Evaluate by expanding both blocks (the matrix is quantifier
        free, so the inner check is plain CNF evaluation).

        A *governor* charges one ``"nodes"`` tick per expanded
        assignment and interrupts cooperatively.
        """
        from repro.solvers.sat import evaluate_cnf

        def _holds(x_map: dict[int, bool], y: tuple[bool, ...]) -> bool:
            if governor is not None:
                governor.tick("nodes")
            return evaluate_cnf(
                self.matrix, {**x_map, **dict(zip(self.universal, y))})

        with obs_span(obs_of(governor), "solve_qbf", prefix="exists-forall"):
            for x_values in itertools.product((False, True),
                                              repeat=len(self.existential)):
                x_map = dict(zip(self.existential, x_values))
                if all(_holds(x_map, y)
                       for y in itertools.product(
                           (False, True), repeat=len(self.universal))):
                    return True
            return False

    def __repr__(self) -> str:
        return (f"∃{list(self.existential)}∀{list(self.universal)}."
                f"{self.matrix!r}")


def random_exists_forall_3sat(num_existential: int, num_universal: int,
                              num_clauses: int, rng: random.Random,
                              ) -> ExistsForall3SAT:
    """Random ∃∀-3SAT instance over consecutive variable blocks."""
    total = num_existential + num_universal
    matrix = random_3sat(total, num_clauses, rng)
    return ExistsForall3SAT(
        existential=range(1, num_existential + 1),
        universal=range(num_existential + 1, total + 1),
        matrix=matrix)


@dataclass(frozen=True)
class ExistsForallExists3SAT:
    """``∃X ∀Y ∃Z. matrix`` with a 3CNF matrix."""

    outer_existential: tuple[int, ...]
    universal: tuple[int, ...]
    inner_existential: tuple[int, ...]
    matrix: CNF

    def __init__(self, outer_existential: Sequence[int],
                 universal: Sequence[int],
                 inner_existential: Sequence[int], matrix: CNF) -> None:
        object.__setattr__(self, "outer_existential",
                           tuple(outer_existential))
        object.__setattr__(self, "universal", tuple(universal))
        object.__setattr__(self, "inner_existential",
                           tuple(inner_existential))
        object.__setattr__(self, "matrix", matrix)
        _check_partition(matrix, self.outer_existential, self.universal,
                         self.inner_existential)

    def is_true(self, governor: ExecutionGovernor | None = None) -> bool:
        """Expand ∃X and ∀Y; decide the innermost ∃Z with DPLL.

        A *governor* charges one ``"nodes"`` tick per expanded outer
        assignment (plus the inner DPLL's node ticks) and interrupts
        cooperatively.
        """
        def _branch_sat(x_assumptions: dict[int, bool],
                        y_values: tuple[bool, ...]) -> bool:
            if governor is not None:
                governor.tick("nodes")
            return dpll_satisfiable(
                self.matrix,
                {**x_assumptions, **dict(zip(self.universal, y_values))},
                governor=governor) is not None

        with obs_span(obs_of(governor), "solve_qbf",
                      prefix="exists-forall-exists"):
            for x_values in itertools.product(
                    (False, True), repeat=len(self.outer_existential)):
                x_assumptions = dict(zip(self.outer_existential, x_values))
                if all(_branch_sat(x_assumptions, y_values)
                       for y_values in itertools.product(
                           (False, True), repeat=len(self.universal))):
                    return True
            return False

    def __repr__(self) -> str:
        return (f"∃{list(self.outer_existential)}∀{list(self.universal)}"
                f"∃{list(self.inner_existential)}.{self.matrix!r}")


def random_forall_exists_3sat(num_universal: int, num_existential: int,
                              num_clauses: int, rng: random.Random,
                              ) -> ForallExists3SAT:
    """Random ∀∃-3SAT instance: variables 1..n universal, rest existential."""
    total = num_universal + num_existential
    matrix = random_3sat(total, num_clauses, rng)
    return ForallExists3SAT(
        universal=range(1, num_universal + 1),
        existential=range(num_universal + 1, total + 1),
        matrix=matrix)


def random_exists_forall_exists_3sat(
        num_outer: int, num_universal: int, num_inner: int,
        num_clauses: int, rng: random.Random) -> ExistsForallExists3SAT:
    """Random ∃∀∃-3SAT instance over consecutive variable blocks."""
    total = num_outer + num_universal + num_inner
    matrix = random_3sat(total, num_clauses, rng)
    return ExistsForallExists3SAT(
        outer_existential=range(1, num_outer + 1),
        universal=range(num_outer + 1, num_outer + num_universal + 1),
        inner_existential=range(num_outer + num_universal + 1, total + 1),
        matrix=matrix)
