"""Reference solvers for the hardness-reduction source problems."""

from repro.solvers.qbf import (ExistsForall3SAT, ExistsForallExists3SAT,
                               ForallExists3SAT,
                               random_exists_forall_3sat,
                               random_exists_forall_exists_3sat,
                               random_forall_exists_3sat)
from repro.solvers.sat import (CNF, dpll_satisfiable, evaluate_cnf,
                               random_3sat)
from repro.solvers.tiling import (TilingInstance, random_tiling_instance,
                                  solve_tiling, verify_tiling)
from repro.solvers.twohead import TwoHeadDFA, bounded_emptiness

__all__ = [
    "CNF",
    "ExistsForall3SAT",
    "ExistsForallExists3SAT",
    "ForallExists3SAT",
    "TilingInstance",
    "TwoHeadDFA",
    "bounded_emptiness",
    "dpll_satisfiable",
    "evaluate_cnf",
    "random_3sat",
    "random_exists_forall_3sat",
    "random_exists_forall_exists_3sat",
    "random_forall_exists_3sat",
    "random_tiling_instance",
    "solve_tiling",
    "verify_tiling",
]
