"""The 2ⁿ×2ⁿ tiling problem (NEXPTIME-complete source of Theorem 4.5(2)).

An instance is a finite tile set with vertical/horizontal compatibility
relations and a designated first tile; a solution is a function
``f : [1, 2ⁿ]² → T`` with ``V(f(i,j), f(i+1,j))``, ``H(f(i,j), f(i,j+1))``
and ``f(1,1) = t0``.  We index rows downward, following the paper's
hypertile layout.

:func:`solve_tiling` is a brute-force backtracking solver over the expanded
``2ⁿ×2ⁿ`` board — usable for the tiny exponents the benches exercise and as
the independent reference against the RCQP reduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.results import SearchStatistics
from repro.errors import ExecutionInterrupted, ReproError
from repro.obs import obs_of, obs_span
from repro.runtime import ExecutionGovernor

__all__ = ["TilingInstance", "solve_tiling", "random_tiling_instance",
           "verify_tiling"]

Tile = int
Grid = list[list[Tile]]


@dataclass(frozen=True)
class TilingInstance:
    """Tiles ``0..k``, compatibility relations, first tile, and exponent n.

    ``vertical`` contains pairs ``(a, b)`` meaning tile ``b`` may appear
    directly below tile ``a``; ``horizontal`` pairs ``(a, b)`` meaning ``b``
    may appear directly to the right of ``a``.
    """

    tiles: tuple[Tile, ...]
    vertical: frozenset[tuple[Tile, Tile]]
    horizontal: frozenset[tuple[Tile, Tile]]
    first_tile: Tile
    exponent: int

    def __init__(self, tiles: Iterable[Tile],
                 vertical: Iterable[tuple[Tile, Tile]],
                 horizontal: Iterable[tuple[Tile, Tile]],
                 first_tile: Tile, exponent: int) -> None:
        object.__setattr__(self, "tiles", tuple(tiles))
        object.__setattr__(self, "vertical", frozenset(vertical))
        object.__setattr__(self, "horizontal", frozenset(horizontal))
        object.__setattr__(self, "first_tile", first_tile)
        object.__setattr__(self, "exponent", exponent)
        if first_tile not in self.tiles:
            raise ReproError(
                f"first tile {first_tile!r} is not in the tile set")
        if exponent < 0:
            raise ReproError("exponent must be nonnegative")

    @property
    def side(self) -> int:
        """Board side length 2ⁿ."""
        return 2 ** self.exponent


def verify_tiling(instance: TilingInstance, grid: Sequence[Sequence[Tile]],
                  ) -> bool:
    """Check that *grid* is a valid tiling of *instance*."""
    side = instance.side
    if len(grid) != side or any(len(row) != side for row in grid):
        return False
    if grid[0][0] != instance.first_tile:
        return False
    for i in range(side):
        for j in range(side):
            tile = grid[i][j]
            if tile not in instance.tiles:
                return False
            if i + 1 < side and (tile, grid[i + 1][j]) not in \
                    instance.vertical:
                return False
            if j + 1 < side and (tile, grid[i][j + 1]) not in \
                    instance.horizontal:
                return False
    return True


def solve_tiling(instance: TilingInstance,
                 governor: ExecutionGovernor | None = None) -> Grid | None:
    """Backtracking search for a tiling; None when none exists.

    Cells are filled row-major; each placement is checked against the tile
    above and to the left, so the partial grid is always consistent.

    A *governor* charges one ``"nodes"`` tick per cell expansion; on
    interruption :class:`~repro.errors.ExecutionInterrupted` propagates
    with the node count attached as statistics.
    """
    side = instance.side
    grid: Grid = [[-1] * side for _ in range(side)]
    nodes = 0

    def candidates(i: int, j: int) -> Iterable[Tile]:
        if i == 0 and j == 0:
            return (instance.first_tile,)
        return instance.tiles

    def fits(i: int, j: int, tile: Tile) -> bool:
        if i > 0 and (grid[i - 1][j], tile) not in instance.vertical:
            return False
        if j > 0 and (grid[i][j - 1], tile) not in instance.horizontal:
            return False
        return True

    def fill(position: int) -> bool:
        nonlocal nodes
        if position == side * side:
            return True
        if governor is not None:
            governor.tick("nodes")
        nodes += 1
        i, j = divmod(position, side)
        for tile in candidates(i, j):
            if fits(i, j, tile):
                grid[i][j] = tile
                if fill(position + 1):
                    return True
                grid[i][j] = -1
        return False

    try:
        with obs_span(obs_of(governor), "solve_tiling",
                      side=side, tiles=len(instance.tiles)):
            if fill(0):
                return grid
    except ExecutionInterrupted as interrupt:
        if interrupt.statistics is None:
            interrupt.statistics = SearchStatistics(nodes_examined=nodes)
        raise
    return None


def random_tiling_instance(num_tiles: int, density: float, exponent: int,
                           rng: random.Random) -> TilingInstance:
    """A random instance: each compatibility pair is included independently
    with probability *density*."""
    tiles = tuple(range(num_tiles))
    vertical = {(a, b) for a in tiles for b in tiles
                if rng.random() < density}
    horizontal = {(a, b) for a in tiles for b in tiles
                  if rng.random() < density}
    return TilingInstance(tiles, vertical, horizontal,
                          first_tile=0, exponent=exponent)
