"""Deterministic finite 2-head automata (2-head DFAs).

The undecidability proofs of Theorems 3.1(3,4) and 4.1(1,3,4) reduce from
the emptiness problem for 2-head DFAs (Spielmann 2000), which is
undecidable.  This module implements the machine model faithfully:

* a 2-head DFA is ``(Q, Σ={0,1}, δ, q0, qacc)`` with
  ``δ : Q × Σε × Σε → Q × {0,+1} × {0,+1}``, ``Σε = Σ ∪ {ε}``;
* a configuration is ``(q, w1, w2)`` — the state plus the suffixes under
  the two heads; a head reads ``ε`` once it has consumed its entire suffix;
* the machine accepts ``w`` when a run from ``(q0, w, w)`` reaches
  ``qacc``.

Emptiness is undecidable, so :func:`bounded_emptiness` searches inputs up
to a length bound — the honest semi-decision the encodings are checked
against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.results import SearchStatistics
from repro.errors import ExecutionInterrupted, ReproError
from repro.obs import obs_of, obs_span
from repro.runtime import ExecutionGovernor

__all__ = ["TwoHeadDFA", "bounded_emptiness"]

EPSILON = "ε"

TransitionKey = tuple[str, str, str]        # (state, read1, read2)
TransitionValue = tuple[str, int, int]      # (state', move1, move2)


@dataclass(frozen=True)
class TwoHeadDFA:
    """A deterministic finite 2-head automaton over Σ = {0, 1}."""

    states: frozenset[str]
    transitions: Mapping[TransitionKey, TransitionValue]
    initial: str
    accepting: str

    def __init__(self, states: Iterable[str],
                 transitions: Mapping[TransitionKey, TransitionValue],
                 initial: str, accepting: str) -> None:
        states = frozenset(states)
        if initial not in states or accepting not in states:
            raise ReproError("initial/accepting state not in state set")
        for (state, read1, read2), (target, move1, move2) in \
                transitions.items():
            if state not in states or target not in states:
                raise ReproError(
                    f"transition {state}->{target} uses unknown states")
            for read in (read1, read2):
                if read not in ("0", "1", EPSILON):
                    raise ReproError(f"invalid read symbol {read!r}")
            for move in (move1, move2):
                if move not in (0, 1):
                    raise ReproError(f"invalid head move {move!r}")
        object.__setattr__(self, "states", states)
        object.__setattr__(self, "transitions", dict(transitions))
        object.__setattr__(self, "initial", initial)
        object.__setattr__(self, "accepting", accepting)

    def _step(self, state: str, word: str, pos1: int, pos2: int,
              ) -> tuple[str, int, int] | None:
        read1 = word[pos1] if pos1 < len(word) else EPSILON
        read2 = word[pos2] if pos2 < len(word) else EPSILON
        transition = self.transitions.get((state, read1, read2))
        if transition is None:
            return None
        target, move1, move2 = transition
        # Positions beyond the end of the input all read ε and are
        # behaviourally identical, so cap them at len(word).  This keeps
        # the configuration space finite, making the loop detector in
        # :meth:`accepts` a sound divergence test, and matches the
        # relational encoding where the final position is a self-loop.
        return (target, min(pos1 + move1, len(word)),
                min(pos2 + move2, len(word)))

    def accepts(self, word: str, max_steps: int | None = None,
                governor: ExecutionGovernor | None = None) -> bool:
        """Simulate the (deterministic) run on *word*.

        The run halts on the accepting state, a missing transition, or a
        repeated configuration (the machine is deterministic, so a repeat
        means divergence).  *max_steps* optionally caps the run length; a
        *governor* charges one ``"nodes"`` tick per simulation step and
        interrupts cooperatively.
        """
        if any(symbol not in "01" for symbol in word):
            raise ReproError(f"input {word!r} is not over Σ = {{0,1}}")
        state, pos1, pos2 = self.initial, 0, 0
        seen: set[tuple[str, int, int]] = set()
        steps = 0
        while True:
            if state == self.accepting:
                return True
            config = (state, pos1, pos2)
            if config in seen:
                return False
            seen.add(config)
            if max_steps is not None and steps >= max_steps:
                return False
            if governor is not None:
                governor.tick("nodes")
            step = self._step(state, word, pos1, pos2)
            if step is None:
                return False
            state, pos1, pos2 = step
            steps += 1

    def accepting_run(self, word: str) -> list[tuple[str, int, int]] | None:
        """The configuration sequence of an accepting run, or None."""
        state, pos1, pos2 = self.initial, 0, 0
        run = [(state, pos1, pos2)]
        seen = {(state, pos1, pos2)}
        while state != self.accepting:
            step = self._step(state, word, pos1, pos2)
            if step is None:
                return None
            state, pos1, pos2 = step
            config = (state, pos1, pos2)
            if config in seen:
                return None
            seen.add(config)
            run.append(config)
        return run


def bounded_emptiness(automaton: TwoHeadDFA, max_length: int,
                      governor: ExecutionGovernor | None = None,
                      ) -> str | None:
    """Search for an accepted word of length ≤ *max_length*.

    Returns the shortest accepted word, or None if every word up to the
    bound is rejected.  Emptiness itself is undecidable (Spielmann 2000),
    which is exactly why the paper's Theorems 3.1 and 4.1 hold; this
    bounded search is the best any implementation can do.

    A *governor* charges one ``"nodes"`` tick per candidate word (the
    per-step ticks of each simulation ride on the same governor); on
    interruption :class:`~repro.errors.ExecutionInterrupted` propagates
    with the word count attached as statistics.
    """
    words = 0
    try:
        with obs_span(obs_of(governor), "solve_twohead",
                      max_length=max_length):
            for length in range(max_length + 1):
                for symbols in itertools.product("01", repeat=length):
                    word = "".join(symbols)
                    if governor is not None:
                        governor.tick("nodes")
                    words += 1
                    if automaton.accepts(word, governor=governor):
                        return word
    except ExecutionInterrupted as interrupt:
        if interrupt.statistics is None:
            interrupt.statistics = SearchStatistics(nodes_examined=words)
        raise
    return None
