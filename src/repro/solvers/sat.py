"""Propositional CNF formulas and a DPLL SAT solver.

The paper's lower bounds reduce from 3SAT (Theorem 4.5(1)), ∀∃-3SAT
(Theorem 3.6), and ∃∀∃-3SAT (Corollary 4.6).  This module is the substrate:
CNF representation, random instance generation, and an independent DPLL
decision procedure used to cross-check the reductions.

Literals are nonzero integers (DIMACS convention): ``+v`` is the variable
``v``, ``-v`` its negation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.results import SearchStatistics
from repro.errors import ExecutionInterrupted, ReproError
from repro.obs import obs_of, obs_span
from repro.runtime import ExecutionGovernor

__all__ = ["CNF", "dpll_satisfiable", "random_3sat", "evaluate_cnf"]

Assignment = dict[int, bool]


@dataclass(frozen=True)
class CNF:
    """A CNF formula: a tuple of clauses, each a tuple of literals."""

    clauses: tuple[tuple[int, ...], ...]
    num_variables: int

    def __init__(self, clauses: Iterable[Iterable[int]],
                 num_variables: int | None = None) -> None:
        frozen = tuple(tuple(clause) for clause in clauses)
        for clause in frozen:
            for literal in clause:
                if literal == 0:
                    raise ReproError("0 is not a valid literal")
        highest = max((abs(lit) for clause in frozen for lit in clause),
                      default=0)
        if num_variables is None:
            num_variables = highest
        elif num_variables < highest:
            raise ReproError(
                f"num_variables={num_variables} but literal mentions "
                f"variable {highest}")
        object.__setattr__(self, "clauses", frozen)
        object.__setattr__(self, "num_variables", num_variables)

    @property
    def variables(self) -> list[int]:
        return list(range(1, self.num_variables + 1))

    def __repr__(self) -> str:
        inner = " ∧ ".join(
            "(" + " ∨ ".join(str(l) for l in clause) + ")"
            for clause in self.clauses)
        return f"CNF[{inner or '⊤'}]"


def evaluate_cnf(cnf: CNF, assignment: Mapping[int, bool]) -> bool:
    """Evaluate *cnf* under a (total) assignment."""
    for clause in cnf.clauses:
        if not any((literal > 0) == assignment[abs(literal)]
                   for literal in clause):
            return False
    return True


def _simplify(clauses: list[tuple[int, ...]], literal: int
              ) -> list[tuple[int, ...]] | None:
    """Assign *literal* true; drop satisfied clauses, shrink the rest.
    Returns None when an empty clause appears (conflict)."""
    result: list[tuple[int, ...]] = []
    for clause in clauses:
        if literal in clause:
            continue
        if -literal in clause:
            shrunk = tuple(l for l in clause if l != -literal)
            if not shrunk:
                return None
            result.append(shrunk)
        else:
            result.append(clause)
    return result


def dpll_satisfiable(cnf: CNF,
                     assumptions: Mapping[int, bool] | None = None,
                     governor: ExecutionGovernor | None = None,
                     ) -> Assignment | None:
    """DPLL with unit propagation and pure-literal elimination.

    Returns a satisfying total assignment, or None when unsatisfiable.
    *assumptions* pre-assigns some variables (used by the QBF expander).

    A *governor* charges one ``"nodes"`` tick per DPLL search node; on
    interruption :class:`~repro.errors.ExecutionInterrupted` propagates
    with the node count attached as statistics.
    """
    nodes = 0
    clauses = list(cnf.clauses)
    assignment: Assignment = {}
    if assumptions:
        for variable, value in assumptions.items():
            literal = variable if value else -variable
            assignment[variable] = value
            simplified = _simplify(clauses, literal)
            if simplified is None:
                return None
            clauses = simplified

    def search(clauses: list[tuple[int, ...]],
               assignment: Assignment) -> Assignment | None:
        nonlocal nodes
        if governor is not None:
            governor.tick("nodes")
        nodes += 1
        # Unit propagation.
        while True:
            units = [clause[0] for clause in clauses if len(clause) == 1]
            if not units:
                break
            for literal in units:
                variable = abs(literal)
                value = literal > 0
                if assignment.get(variable, value) != value:
                    return None
                if variable in assignment:
                    continue
                assignment[variable] = value
                simplified = _simplify(clauses, literal)
                if simplified is None:
                    return None
                clauses = simplified
                break  # re-scan: simplification may create new units
        if not clauses:
            return assignment
        # Pure literal elimination.
        polarity: dict[int, int] = {}
        for clause in clauses:
            for literal in clause:
                variable = abs(literal)
                sign = 1 if literal > 0 else -1
                polarity[variable] = (
                    sign if variable not in polarity
                    else (polarity[variable] if polarity[variable] == sign
                          else 0))
        for variable, sign in polarity.items():
            if sign != 0:
                literal = variable * sign
                assignment[variable] = sign > 0
                simplified = _simplify(clauses, literal)
                if simplified is None:  # pragma: no cover - pure is safe
                    return None
                return search(simplified, assignment)
        # Branch on the first literal of the shortest clause.
        shortest = min(clauses, key=len)
        literal = shortest[0]
        for chosen in (literal, -literal):
            trial = dict(assignment)
            trial[abs(chosen)] = chosen > 0
            simplified = _simplify(clauses, chosen)
            if simplified is not None:
                solution = search(simplified, trial)
                if solution is not None:
                    return solution
        return None

    try:
        with obs_span(obs_of(governor), "solve_sat"):
            solution = search(clauses, assignment)
    except ExecutionInterrupted as interrupt:
        if interrupt.statistics is None:
            interrupt.statistics = SearchStatistics(nodes_examined=nodes)
        raise
    if solution is None:
        return None
    for variable in cnf.variables:
        solution.setdefault(variable, False)
    if assumptions:
        for variable, value in assumptions.items():
            solution[variable] = value
    return solution


def random_3sat(num_variables: int, num_clauses: int,
                rng: random.Random) -> CNF:
    """A random 3SAT instance: clauses of three distinct variables with
    random polarities."""
    if num_variables < 3:
        raise ReproError("random_3sat needs at least 3 variables")
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(range(1, num_variables + 1), 3)
        clauses.append(tuple(
            v if rng.random() < 0.5 else -v for v in chosen))
    return CNF(clauses, num_variables=num_variables)
