"""A second MDM domain: supply-chain management (SCM).

Section 2.3 notes that relative completeness "also finds similar
applications in Enterprise Resource Planning (ERP), Supply Chain
Management (SCM)…".  This scenario exercises the same machinery on a
different shape of schema: two master relations (approved suppliers and a
part catalog), a shipment fact table keyed by shipment id, and a local
copy of part metadata.

Completeness questions it supports:

* *can we trust "which parts did supplier s ship"?* — complete once every
  catalog part (of the relevant category) appears in a shipment from s,
  or the shipment key constraint caps further additions;
* *can we trust "which suppliers shipped category c"?* — bounded by the
  approved-supplier master relation;
* *"which shipment ids exist"* can never be complete — shipment ids are
  not mastered, so the audit recommends expanding master data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.constraints.cfd import FunctionalDependency
from repro.constraints.containment import ContainmentConstraint
from repro.constraints.ind import InclusionDependency
from repro.queries.atoms import eq, rel
from repro.queries.cq import ConjunctiveQuery, cq
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema, RelationSchema

__all__ = ["SCMScenario"]


@dataclass
class SCMScenario:
    """Schemas, instances, constraints, and queries of the SCM example."""

    #: master: approved suppliers (closed world)
    approved_suppliers: set[str] = field(default_factory=set)
    #: master: the part catalog as (part, category) pairs (closed world)
    catalog: set[tuple[str, str]] = field(default_factory=set)
    #: operational: shipments (sid, supplier, part)
    shipments: set[tuple[str, str, str]] = field(default_factory=set)
    #: operational: local copy of part metadata (part, category)
    part_info: set[tuple[str, str]] = field(default_factory=set)

    # ------------------------------------------------------------------
    # Schemas and instances
    # ------------------------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        return DatabaseSchema([
            RelationSchema("Ship", ["sid", "supplier", "part"]),
            RelationSchema("PartInfo", ["part", "category"]),
        ])

    @property
    def master_schema(self) -> DatabaseSchema:
        return DatabaseSchema([
            RelationSchema("ApprovedSup", ["supplier"]),
            RelationSchema("Catalog", ["part", "category"]),
        ])

    def master(self) -> Instance:
        return Instance(self.master_schema, {
            "ApprovedSup": {(s,) for s in self.approved_suppliers},
            "Catalog": set(self.catalog),
        })

    def database(self, *, missing_shipments: Iterable[str] = (),
                 ) -> Instance:
        """The operational database; *missing_shipments* drops shipment
        ids (the incompleteness knob)."""
        missing = set(missing_shipments)
        return Instance(self.schema, {
            "Ship": {(sid, sup, part)
                     for sid, sup, part in self.shipments
                     if sid not in missing},
            "PartInfo": set(self.part_info),
        })

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------

    def supplier_ind(self) -> ContainmentConstraint:
        """Only approved suppliers ship."""
        return InclusionDependency(
            "Ship", ["supplier"], "ApprovedSup", ["supplier"],
            name="ship⊆approved").to_containment_constraint(
            self.schema, self.master_schema)

    def part_ind(self) -> ContainmentConstraint:
        """Every shipped part is in the catalog."""
        return InclusionDependency(
            "Ship", ["part"], "Catalog", ["part"],
            name="ship⊆catalog").to_containment_constraint(
            self.schema, self.master_schema)

    def part_info_ind(self) -> ContainmentConstraint:
        """The local part metadata mirrors the catalog."""
        return InclusionDependency(
            "PartInfo", ["part", "category"],
            "Catalog", ["part", "category"],
            name="partinfo⊆catalog").to_containment_constraint(
            self.schema, self.master_schema)

    def sid_key(self) -> list[ContainmentConstraint]:
        """FD sid → supplier, part (shipment ids identify shipments)."""
        return FunctionalDependency(
            "Ship", ["sid"], ["supplier", "part"],
            name="sid-key").to_containment_constraints(self.schema)

    def default_constraints(self) -> list[ContainmentConstraint]:
        return ([self.supplier_ind(), self.part_ind(),
                 self.part_info_ind()] + self.sid_key())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def q_parts_from(self, supplier: str) -> ConjunctiveQuery:
        """All parts shipped by *supplier*."""
        return cq([var("p")],
                  [rel("Ship", var("s"), supplier, var("p"))],
                  name=f"Qparts[{supplier}]")

    def q_suppliers_of_category(self, category: str) -> ConjunctiveQuery:
        """Suppliers that shipped a part of *category*."""
        return cq([var("sup")],
                  [rel("Ship", var("s"), var("sup"), var("p")),
                   rel("PartInfo", var("p"), var("cat")),
                   eq(var("cat"), category)],
                  name=f"Qsup[{category}]")

    def q_shipment_ids(self) -> ConjunctiveQuery:
        """All shipment ids — never relatively complete (ids are not
        mastered)."""
        return cq([var("s")],
                  [rel("Ship", var("s"), var("sup"), var("p"))],
                  name="Qsid")

    # ------------------------------------------------------------------
    # Canonical populated scenario
    # ------------------------------------------------------------------

    @classmethod
    def example(cls) -> "SCMScenario":
        catalog = {("p1", "bolts"), ("p2", "bolts"), ("p3", "panels")}
        return cls(
            approved_suppliers={"acme", "globex"},
            catalog=catalog,
            shipments={
                ("s1", "acme", "p1"),
                ("s2", "acme", "p2"),
                ("s3", "globex", "p3"),
            },
            part_info=set(catalog),
        )
