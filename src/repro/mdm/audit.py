"""The Section 2.3 audit paradigms, as a workflow object.

Given master data, containment constraints, a database, and a query, an
:class:`CompletenessAudit` runs the three analyses the paper describes:

1. **Assess the data** (RCDP): can the query answer be trusted?
2. **Guide data collection** (RCQP + certificates): if not, can the
   database be expanded into a complete one, and with what records?
3. **Guide master-data expansion**: if no complete database exists, the
   master data itself must grow — the audit names the unbounded output
   attributes as the expansion targets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.diagnostics import Report
from repro.constraints.containment import ContainmentConstraint
from repro.core.analysis import BoundednessReport, analyze_boundedness
from repro.core.rcdp import decide_rcdp, resolve_analysis
from repro.core.rcqp import decide_rcqp
from repro.core.results import (RCDPResult, RCDPStatus, RCQPResult,
                                RCQPStatus)
from repro.core.witness import CompletionOutcome, make_complete
from repro.engine import EvaluationContext
from repro.obs import obs_of, obs_span
from repro.relational.instance import Instance
from repro.relational.schema import DatabaseSchema
from repro.runtime import ExecutionGovernor, validate_exhaustion_mode

__all__ = ["AuditVerdict", "AuditReport", "CompletenessAudit"]


class AuditVerdict(enum.Enum):
    """Top-level outcome of an audit, following §2.3."""

    #: The answer in the current database is complete — trust it.
    TRUSTWORTHY = "trustworthy"
    #: Incomplete, but a complete database exists: collect more data.
    COLLECT_DATA = "collect-data"
    #: No complete database exists: the master data must be expanded.
    EXPAND_MASTER_DATA = "expand-master-data"
    #: Incomplete; the bounded RCQP search found no witness, so the
    #: recommendation is heuristic.
    COLLECT_DATA_OR_EXPAND = "collect-data-or-expand"
    #: A governed analysis ran out of budget/deadline before reaching a
    #: verdict; the report carries the partial results and checkpoints.
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class AuditReport:
    """Everything the three analyses produced."""

    verdict: AuditVerdict
    rcdp: RCDPResult
    rcqp: RCQPResult | None = None
    completion: CompletionOutcome | None = None
    boundedness: BoundednessReport | None = None
    #: The static analyzer's report for the audited scenario (run once
    #: up front and shared by every stage).
    analysis: Report | None = None

    @property
    def suggested_facts(self) -> tuple[tuple[str, tuple], ...]:
        """Records whose collection would make the database complete
        (paradigm 2), when the completion loop converged."""
        if self.completion is not None and self.completion.complete:
            return self.completion.added_facts
        if self.rcdp.certificate is not None:
            return self.rcdp.certificate.extension_facts
        return ()

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [f"verdict: {self.verdict.value}"]
        if self.analysis is not None and len(self.analysis):
            lines.append(f"analysis: {self.analysis.summary()}")
        lines.append(f"RCDP: {self.rcdp.status.value}")
        if self.rcdp.interrupted:
            lines.append(f"RCDP interrupted by: {self.rcdp.interrupted}")
        if self.rcqp is not None:
            lines.append(f"RCQP: {self.rcqp.status.value}")
            if self.rcqp.interrupted:
                lines.append(
                    f"RCQP interrupted by: {self.rcqp.interrupted}")
        if self.suggested_facts:
            facts = ", ".join(
                f"{name}{row!r}" for name, row in self.suggested_facts[:5])
            more = (" …" if len(self.suggested_facts) > 5 else "")
            lines.append(f"collect: {facts}{more}")
        if self.boundedness is not None:
            for suggestion in self.boundedness.master_data_suggestions():
                lines.append(f"expand master data: {suggestion}")
        return "\n".join(lines)


@dataclass
class CompletenessAudit:
    """Reusable audit context: fixed ``(Dm, V)``, varying databases and
    queries — the deployment shape §2.3 describes."""

    master: Instance
    constraints: Sequence[ContainmentConstraint]
    schema: DatabaseSchema
    max_completion_rounds: int = 32
    rcqp_valuation_set_size: int = 1
    #: Turn off to run every stage on the naive evaluators (ablation).
    use_engine: bool = True
    #: Storage backend for the audit's context (``"python"``,
    #: ``"columnar"``, ``"sqlite"``; None resolves via $REPRO_BACKEND).
    backend: str | None = None
    #: Shard every stage's search across this many worker processes
    #: (1 = serial, 0 = all cores); verdicts are worker-count invariant.
    workers: int = 1
    #: One evaluation context for the audit's whole lifetime: ``Dm`` and
    #: ``V`` are fixed across :meth:`assess` calls, so compiled plans,
    #: master projections, and constraint-query answers carry over from
    #: one assessment to the next.
    _context: EvaluationContext | None = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def context(self) -> EvaluationContext | None:
        """The audit's persistent evaluation context (None when the
        engine is disabled)."""
        if self.use_engine and self._context is None:
            self._context = EvaluationContext(backend=self.backend)
        return self._context

    def assess(self, query: Any, database: Instance,
               *, governor: ExecutionGovernor | None = None,
               on_exhausted: str = "partial") -> AuditReport:
        """Run the full §2.3 cascade for *query* on *database*.

        A *governor* bounds the whole cascade under one budget/deadline.
        Under ``on_exhausted="partial"`` (default) an interrupted stage
        yields an ``INCONCLUSIVE`` report carrying the partial results
        and their checkpoints; ``"error"`` propagates the governor's
        exception instead.
        """
        validate_exhaustion_mode(on_exhausted)
        obs = obs_of(governor)
        context = self.context
        # One analysis pass for the whole cascade; error findings raise
        # AnalysisError here, before any search runs.
        with obs_span(obs, "analyze"):
            analysis = resolve_analysis(query, list(self.constraints),
                                        database, self.master, None, True)
        with obs_span(obs, "audit_rcdp"):
            rcdp = decide_rcdp(query, database, self.master,
                               list(self.constraints), governor=governor,
                               on_exhausted=on_exhausted,
                               context=context,
                               use_engine=context is not None,
                               analysis=analysis, analyze=False,
                               workers=self.workers)
        if rcdp.is_exhausted:
            return AuditReport(verdict=AuditVerdict.INCONCLUSIVE,
                               rcdp=rcdp, analysis=analysis)
        if rcdp.status is RCDPStatus.COMPLETE:
            return AuditReport(verdict=AuditVerdict.TRUSTWORTHY,
                               rcdp=rcdp, analysis=analysis)

        with obs_span(obs, "audit_rcqp"):
            rcqp = decide_rcqp(
                query, self.master, list(self.constraints), self.schema,
                max_valuation_set_size=self.rcqp_valuation_set_size,
                governor=governor, on_exhausted=on_exhausted,
                context=context, use_engine=context is not None,
                analysis=analysis, analyze=False, workers=self.workers)
        if rcqp.is_exhausted:
            return AuditReport(verdict=AuditVerdict.INCONCLUSIVE,
                               rcdp=rcdp, rcqp=rcqp, analysis=analysis)
        if rcqp.status is RCQPStatus.NONEMPTY:
            with obs_span(obs, "audit_completion"):
                completion = make_complete(
                    query, database, self.master, list(self.constraints),
                    max_rounds=self.max_completion_rounds,
                    governor=governor, on_exhausted=on_exhausted,
                    context=context, use_engine=context is not None,
                    analysis=analysis, analyze=False, workers=self.workers)
            return AuditReport(verdict=AuditVerdict.COLLECT_DATA,
                               rcdp=rcdp, rcqp=rcqp, completion=completion,
                               analysis=analysis)
        with obs_span(obs, "audit_boundedness"):
            boundedness = analyze_boundedness(query, list(self.constraints),
                                              self.schema)
        if rcqp.status is RCQPStatus.EMPTY:
            return AuditReport(verdict=AuditVerdict.EXPAND_MASTER_DATA,
                               rcdp=rcdp, rcqp=rcqp,
                               boundedness=boundedness, analysis=analysis)
        return AuditReport(verdict=AuditVerdict.COLLECT_DATA_OR_EXPAND,
                           rcdp=rcdp, rcqp=rcqp, boundedness=boundedness,
                           analysis=analysis)
