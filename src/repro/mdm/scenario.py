"""The paper's running CRM scenario (Examples 1.1, 2.1, 2.2, §2.3).

A company maintains master data ``DCust`` (the complete list of domestic
customers) plus operational relations:

* ``Cust(cid, name, cc, ac, phn)`` — all customers, domestic (cc = '01')
  or international; only the *domestic* part is bounded by master data
  (the CC φ0 of Example 2.1);
* ``Supt(eid, dept, cid)`` — which employee supports which customer;
* ``Manage(eid1, eid2)`` — the reporting hierarchy, a superset of master
  ``Managem``.

The scenario bundles schemas, instances, constraints, and the example
queries Q0–Q3, so examples, tests, and benchmarks all speak about the same
objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.constraints.containment import (ContainmentConstraint,
                                           Projection)
from repro.constraints.ind import InclusionDependency
from repro.queries.atoms import RelAtom, eq, neq, rel
from repro.queries.cq import ConjunctiveQuery, cq
from repro.queries.datalog import DatalogQuery, rule
from repro.queries.terms import var
from repro.relational.instance import Instance
from repro.relational.schema import (DatabaseSchema,
                                     RelationSchema)

__all__ = ["CustomerRecord", "CRMScenario", "DOMESTIC_COUNTRY_CODE"]

DOMESTIC_COUNTRY_CODE = "01"


@dataclass(frozen=True)
class CustomerRecord:
    """One customer row shared between master data and the database."""

    cid: str
    name: str
    ac: str
    phn: str

    def as_master_row(self) -> tuple:
        return (self.cid, self.name, self.ac, self.phn)

    def as_cust_row(self, cc: str = DOMESTIC_COUNTRY_CODE) -> tuple:
        return (self.cid, self.name, cc, self.ac, self.phn)


@dataclass
class CRMScenario:
    """Schemas, instances, constraints, and queries of the CRM example."""

    domestic: list[CustomerRecord] = field(default_factory=list)
    international: list[CustomerRecord] = field(default_factory=list)
    support: set[tuple[str, str, str]] = field(default_factory=set)
    manage_master: set[tuple[str, str]] = field(default_factory=set)
    manage: set[tuple[str, str]] = field(default_factory=set)

    # ------------------------------------------------------------------
    # Schemas
    # ------------------------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        return DatabaseSchema([
            RelationSchema("Cust", ["cid", "name", "cc", "ac", "phn"]),
            RelationSchema("Supt", ["eid", "dept", "cid"]),
            RelationSchema("Manage", ["eid1", "eid2"]),
        ])

    @property
    def master_schema(self) -> DatabaseSchema:
        return DatabaseSchema([
            RelationSchema("DCust", ["cid", "name", "ac", "phn"]),
            RelationSchema("Managem", ["eid1", "eid2"]),
            RelationSchema("Empty", ["z"]),
        ])

    # ------------------------------------------------------------------
    # Instances
    # ------------------------------------------------------------------

    def master(self) -> Instance:
        """``Dm``: the closed-world master data."""
        return Instance(self.master_schema, {
            "DCust": {r.as_master_row() for r in self.domestic},
            "Managem": set(self.manage_master),
        })

    def database(self, *, missing_customers: Iterable[str] = (),
                 missing_support: Iterable[tuple[str, str]] = (),
                 ) -> Instance:
        """``D``: the partially closed operational database.

        *missing_customers* drops domestic customers from ``Cust``;
        *missing_support* drops ``(eid, cid)`` pairs from ``Supt`` — the
        knobs tests and benchmarks use to create incompleteness.
        """
        missing_customers = set(missing_customers)
        missing_support = set(missing_support)
        cust = {r.as_cust_row() for r in self.domestic
                if r.cid not in missing_customers}
        cust |= {r.as_cust_row(cc="44") for r in self.international}
        supt = {(eid, dept, cid) for eid, dept, cid in self.support
                if (eid, cid) not in missing_support}
        return Instance(self.schema, {
            "Cust": cust, "Supt": supt, "Manage": set(self.manage)})

    # ------------------------------------------------------------------
    # Containment constraints
    # ------------------------------------------------------------------

    def phi0(self) -> ContainmentConstraint:
        """φ0 of Example 2.1: the cids of supported domestic customers are
        bounded by master data."""
        c, n, ccv, a, p = (var(x) for x in ("c", "n", "ccv", "a", "p"))
        e, d = var("e"), var("d")
        query = cq([c],
                   [rel("Cust", c, n, ccv, a, p), rel("Supt", e, d, c),
                    eq(ccv, DOMESTIC_COUNTRY_CODE)],
                   name="q[φ0]")
        return ContainmentConstraint(
            query, Projection.on("DCust", [0]), name="φ0")

    def domestic_cust_ind(self) -> ContainmentConstraint:
        """Domestic ``Cust`` rows are bounded *as whole records* by
        ``DCust`` (the strong variant used by the Q0/Q1 analyses)."""
        c, n, ccv, a, p = (var(x) for x in ("c", "n", "ccv", "a", "p"))
        query = cq([c, n, a, p],
                   [rel("Cust", c, n, ccv, a, p),
                    eq(ccv, DOMESTIC_COUNTRY_CODE)],
                   name="q[cust01]")
        return ContainmentConstraint(
            query, Projection.on("DCust", [0, 1, 2, 3]), name="cust01")

    def supt_cid_ind(self) -> ContainmentConstraint:
        """Every supported customer is a master customer (an IND)."""
        return InclusionDependency(
            "Supt", ["cid"], "DCust", ["cid"],
            name="supt⊆dcust").to_containment_constraint(
            self.schema, self.master_schema)

    def manage_ind(self) -> ContainmentConstraint:
        """``Manage`` pairs are bounded by master ``Managem`` pairs."""
        return InclusionDependency(
            "Manage", ["eid1", "eid2"], "Managem", ["eid1", "eid2"],
            name="manage⊆managem").to_containment_constraint(
            self.schema, self.master_schema)

    def phi1_at_most_k(self, k: int) -> ContainmentConstraint:
        """φ1 of Example 2.1: each employee supports at most *k*
        customers."""
        e = var("e")
        body: list = []
        for i in range(k + 1):
            body.append(rel("Supt", e, var(f"d{i}"), var(f"c{i}")))
        for i in range(k + 1):
            for j in range(i + 1, k + 1):
                body.append(neq(var(f"c{i}"), var(f"c{j}")))
        query = ConjunctiveQuery([e], body, name=f"q[φ1,k={k}]")
        return ContainmentConstraint(query, Projection.empty(),
                                     name=f"φ1(k={k})")

    def default_constraints(self) -> list[ContainmentConstraint]:
        """The paper-faithful constraint set: φ0 bounds *domestic*
        supported customers, whole domestic customer records are bounded
        by master data, and the management hierarchy by ``Managem``.

        :meth:`supt_cid_ind` is deliberately not included: it also bounds
        *international* support and only holds for scenarios without
        international customers in ``Supt``.
        """
        return [self.phi0(), self.domestic_cust_ind(), self.manage_ind()]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def q0_customers_with_area_code(self, ac: str = "908",
                                    ) -> ConjunctiveQuery:
        """Q0 (§2.3): all customers based in the *ac* area."""
        c, n, ccv, a, p = (var(x) for x in ("c", "n", "ccv", "a", "p"))
        return cq([c], [rel("Cust", c, n, ccv, a, p), eq(a, ac)],
                  name="Q0")

    def q1_customers_supported_by(self, eid: str = "e0", ac: str = "908",
                                  ) -> ConjunctiveQuery:
        """Q1 (Example 1.1): *ac*-area customers supported by *eid*."""
        c, n, ccv, a, p, d = (var(x)
                              for x in ("c", "n", "ccv", "a", "p", "d"))
        return cq([c],
                  [rel("Supt", eid, d, c),
                   rel("Cust", c, n, ccv, a, p), eq(a, ac)],
                  name="Q1")

    def q2_all_supported_by(self, eid: str = "e0") -> ConjunctiveQuery:
        """Q2 (Example 1.1): all customers supported by *eid*."""
        c, d = var("c"), var("d")
        return cq([c], [rel("Supt", eid, d, c)], name="Q2")

    def q3_management_chain(self, eid: str = "e0") -> DatalogQuery:
        """Q3 (Example 1.1) in FP: everybody above *eid* in the
        management hierarchy."""
        x, y, z = var("x"), var("y"), var("z")
        return DatalogQuery([
            rule(RelAtom("Above", (x,)), rel("Manage", x, eid)),
            rule(RelAtom("Above", (x,)), rel("Manage", x, y),
                 RelAtom("Above", (y,))),
        ], goal="Above", name="Q3")

    def q3_management_chain_cq(self, eid: str = "e0",
                               depth: int = 2) -> ConjunctiveQuery:
        """Q3 as a CQ of bounded *depth*: only managers exactly *depth*
        levels up (the paper's point: CQ cannot express the closure)."""
        chain = [var(f"m{i}") for i in range(depth + 1)]
        body = [rel("Manage", chain[i + 1], chain[i])
                for i in range(depth)]
        body.append(eq(chain[0], eid))
        return ConjunctiveQuery([chain[-1]], body, name=f"Q3[{depth}]")

    # ------------------------------------------------------------------
    # Canonical populated scenario
    # ------------------------------------------------------------------

    @classmethod
    def example(cls) -> "CRMScenario":
        """The hand-sized instance used by the paper's narrative."""
        domestic = [
            CustomerRecord("c1", "ann", "908", "555-0001"),
            CustomerRecord("c2", "bob", "908", "555-0002"),
            CustomerRecord("c3", "cecilia", "212", "555-0003"),
        ]
        international = [
            CustomerRecord("i1", "ines", "+44-20", "555-1001"),
        ]
        support = {
            ("e0", "sales", "c1"), ("e0", "sales", "c2"),
            ("e1", "sales", "c3"), ("e1", "sales", "i1"),
        }
        manage_master = {("e2", "e0"), ("e2", "e1"), ("e3", "e2")}
        return cls(domestic=domestic, international=international,
                   support=support, manage_master=manage_master,
                   manage=set(manage_master))
