"""Master-data-management scenario, generators, and audit workflows."""

from repro.mdm.audit import AuditReport, AuditVerdict, CompletenessAudit
from repro.mdm.generators import GeneratorConfig, generate_scenario
from repro.mdm.scenario import (CRMScenario, CustomerRecord,
                                DOMESTIC_COUNTRY_CODE)
from repro.mdm.scm import SCMScenario

__all__ = [
    "AuditReport",
    "AuditVerdict",
    "CompletenessAudit",
    "CRMScenario",
    "CustomerRecord",
    "DOMESTIC_COUNTRY_CODE",
    "GeneratorConfig",
    "SCMScenario",
    "generate_scenario",
]
