"""Synthetic CRM workload generators.

Benchmarks scale the paper's CRM scenario with generated customers,
employees, support assignments, and management hierarchies.  All generation
is driven by an explicit :class:`random.Random` for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.mdm.scenario import CRMScenario, CustomerRecord

__all__ = ["GeneratorConfig", "generate_scenario"]

_AREA_CODES = ("908", "212", "973", "201", "609")
_DEPARTMENTS = ("sales", "support", "BU")


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for :func:`generate_scenario`.

    Attributes
    ----------
    num_domestic / num_international:
        Customer counts per segment.
    num_employees:
        Number of support employees ``e0..``.
    support_probability:
        Probability an (employee, domestic customer) pair is in ``Supt``.
    missing_support_fraction:
        Fraction of generated support tuples *dropped* from the database —
        the incompleteness knob.
    management_depth:
        Height of the complete binary management hierarchy in master data.
    """

    num_domestic: int = 10
    num_international: int = 3
    num_employees: int = 3
    support_probability: float = 0.5
    missing_support_fraction: float = 0.0
    management_depth: int = 2


def generate_scenario(config: GeneratorConfig,
                      rng: random.Random) -> CRMScenario:
    """Generate a reproducible CRM scenario per *config*."""
    domestic = [
        CustomerRecord(
            cid=f"c{i}", name=f"customer-{i}",
            ac=rng.choice(_AREA_CODES),
            phn=f"555-{i:04d}")
        for i in range(config.num_domestic)]
    international = [
        CustomerRecord(
            cid=f"i{i}", name=f"intl-{i}", ac=f"+{30 + i}",
            phn=f"777-{i:04d}")
        for i in range(config.num_international)]

    employees = [f"e{i}" for i in range(config.num_employees)]
    support = set()
    for employee in employees:
        for record in domestic:
            if rng.random() < config.support_probability:
                support.add((employee, rng.choice(_DEPARTMENTS),
                             record.cid))

    # Drop a fraction of support tuples to simulate missing data.
    dropped = max(0, int(len(support) * config.missing_support_fraction))
    support_list = sorted(support)
    rng.shuffle(support_list)
    kept = set(support_list[dropped:])

    manage_master = set()
    frontier = ["m0"]
    counter = 1
    for _ in range(config.management_depth):
        next_frontier = []
        for manager in frontier:
            for _ in range(2):
                child = f"m{counter}"
                counter += 1
                manage_master.add((manager, child))
                next_frontier.append(child)
        frontier = next_frontier

    return CRMScenario(
        domestic=domestic, international=international, support=kept,
        manage_master=manage_master, manage=set(manage_master))
